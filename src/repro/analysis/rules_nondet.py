"""Nondeterminism rules: sources of run-to-run or host-to-host variance.

Every rule here targets a pattern that has actually broken a reproducible
system somewhere: filesystem enumeration order is mount- and history-
dependent, ``set`` iteration order and builtin ``hash()`` vary with
``PYTHONHASHSEED``, module-level RNG calls vary with import order, and
wall-clock/pid reads poison any fingerprint they reach.  A violation in this
repo poisons the stage cache or breaks the ``jobs=1 ≡ jobs=N`` shard merge.

Rules:

* ``nondet-walk`` — ``os.walk`` loops must sort both ``dirnames`` and
  ``filenames`` in the loop body (sorting ``dirnames`` in place also fixes
  the traversal order of the walk itself).
* ``nondet-listdir`` — ``os.listdir``/``os.scandir`` results must pass
  through ``sorted(...)`` unless only their emptiness/length is consumed.
* ``nondet-glob`` — ``glob.glob``/``glob.iglob`` likewise (glob results are
  readdir-ordered, not sorted).
* ``nondet-set-iter`` — iterating a set (or materializing one with
  ``list``/``tuple``/``enumerate``/``join``) without ``sorted(...)``;
  membership tests are fine.
* ``nondet-hash`` — builtin ``hash()`` is salted per process; use
  ``hashlib`` for anything persisted or fingerprinted.
* ``nondet-random`` — module-level ``random.*`` / ``np.random.*`` draws use
  hidden global state; thread a seeded ``Generator``/``Random`` instead.
* ``nondet-time`` — ``time.time()``/``os.getpid()``/``uuid.uuid1|uuid4()``
  flowing into fingerprint or digest computations.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, Module, Project, Rule, register_rule

__all__ = [
    "NondetGlobRule",
    "NondetHashRule",
    "NondetListdirRule",
    "NondetRandomRule",
    "NondetSetIterRule",
    "NondetTimeRule",
    "NondetWalkRule",
]


def _dotted_name(node: ast.expr) -> str:
    """Best-effort dotted name of an expression (``np.random.normal``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted_name(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    if isinstance(node, ast.Call):
        return _dotted_name(node.func)
    return ""


def _is_call_to(node: ast.expr, *dotted: str) -> bool:
    return isinstance(node, ast.Call) and _dotted_name(node.func) in dotted


def _wrapped_in(module: Module, node: ast.AST, names: frozenset[str]) -> bool:
    """Whether ``node`` sits (transitively) inside a call to one of ``names``.

    Only argument positions count: being the *iterable of a loop* inside a
    ``sorted(...)`` elsewhere does not sanitize the loop itself.
    """
    current = node
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Call):
            if current is not ancestor.func and _dotted_name(ancestor.func) in names:
                return True
        elif isinstance(ancestor, (ast.stmt, ast.comprehension)):
            return False
        current = ancestor
    return False


_SORTED = frozenset({"sorted"})
_SIZE_ONLY = frozenset({"len", "bool", "sorted", "any"})


def _size_only_context(module: Module, node: ast.AST) -> bool:
    """True when only the result's size/emptiness is consumed.

    Covers ``len(...)``/``bool(...)``/``sorted(...)`` wrappers, ``not ...``,
    and the call standing alone as an ``if``/``while`` test.
    """
    if _wrapped_in(module, node, _SIZE_ONLY):
        return True
    parent = module.parent(node)
    if isinstance(parent, ast.UnaryOp) and isinstance(parent.op, ast.Not):
        return True
    if isinstance(parent, (ast.If, ast.While)) and parent.test is node:
        return True
    if isinstance(parent, ast.BoolOp):
        return True
    if isinstance(parent, ast.Compare):
        return True
    return False


@register_rule
class NondetWalkRule(Rule):
    name = "nondet-walk"
    description = (
        "os.walk iteration without sorting dirnames and filenames — "
        "enumeration order is filesystem-dependent"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iterable = node.iter
            if _is_call_to(iterable, "sorted") and iterable.args:
                iterable = iterable.args[0]
            if not _is_call_to(iterable, "os.walk", "walk"):
                continue
            if _is_call_to(node.iter, "sorted"):
                continue  # sorted(os.walk(...)) orders the triples themselves
            target = node.target
            unsorted: list[str] = []
            if isinstance(target, ast.Tuple) and len(target.elts) == 3:
                names = [
                    element.id if isinstance(element, ast.Name) else None
                    for element in target.elts
                ]
                sorts = self._sorted_names(node.body)
                for position, name in zip(("dirnames", "filenames"), names[1:]):
                    if name is None or name not in sorts:
                        unsorted.append(name or position)
            else:
                unsorted = ["dirnames", "filenames"]
            if unsorted:
                yield self.finding(
                    module,
                    node,
                    "os.walk loop does not sort "
                    + " or ".join(f"'{name}'" for name in unsorted),
                    hint="call .sort() on the dirnames and filenames lists at the "
                    "top of the loop body (sorting dirnames in place also fixes "
                    "the traversal order)",
                )

    @staticmethod
    def _sorted_names(body: list[ast.stmt]) -> set[str]:
        """Names ``X`` with an ``X.sort()`` call anywhere in the loop body."""
        names: set[str] = set()
        for statement in body:
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                    and isinstance(node.func.value, ast.Name)
                ):
                    names.add(node.func.value.id)
        return names


class _UnsortedEnumerationRule(Rule):
    """Shared machinery for listdir/scandir/glob results used unsorted."""

    dotted_names: tuple[str, ...] = ()

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not _is_call_to(node, *self.dotted_names):
                continue
            if _wrapped_in(module, node, _SORTED):
                continue
            if _size_only_context(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"{_dotted_name(node.func)}() result used without sorted() — "
                "entry order is filesystem-dependent",
                hint="wrap the call in sorted(...), or restrict usage to "
                "len()/emptiness checks",
            )


@register_rule
class NondetListdirRule(_UnsortedEnumerationRule):
    name = "nondet-listdir"
    description = "os.listdir/os.scandir results consumed without sorting"
    dotted_names = ("os.listdir", "os.scandir", "listdir", "scandir")


@register_rule
class NondetGlobRule(_UnsortedEnumerationRule):
    name = "nondet-glob"
    description = "glob.glob/glob.iglob results consumed without sorting"
    dotted_names = ("glob.glob", "glob.iglob", "iglob")


def _is_set_expression(node: ast.expr) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp)) or _is_call_to(
        node, "set", "frozenset"
    )


@register_rule
class NondetSetIterRule(Rule):
    name = "nondet-set-iter"
    description = (
        "iteration over a set — order varies with PYTHONHASHSEED; sort before "
        "iterating (membership tests are fine)"
    )

    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expression(
                node.iter
            ):
                yield self._finding(module, node.iter, "iterated by a for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter) and not isinstance(
                        node, ast.SetComp
                    ):
                        yield self._finding(
                            module, generator.iter, "iterated by a comprehension"
                        )
            elif isinstance(node, ast.Call):
                func = _dotted_name(node.func)
                is_join = isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                if func in self._MATERIALIZERS or is_join:
                    for arg in node.args:
                        if _is_set_expression(arg):
                            yield self._finding(
                                module, arg, f"materialized through {func or 'join'}()"
                            )

    def _finding(self, module: Module, node: ast.expr, context: str) -> Finding:
        return self.finding(
            module,
            node,
            f"set {context} — element order depends on PYTHONHASHSEED",
            hint="wrap in sorted(...) before iterating, or keep the data in a "
            "list/dict (insertion-ordered) instead of a set",
        )


@register_rule
class NondetHashRule(Rule):
    name = "nondet-hash"
    description = (
        "builtin hash() is salted per process (PYTHONHASHSEED); use hashlib "
        "for anything persisted, compared across runs, or fingerprinted"
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if _is_call_to(node, "hash"):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() call — value varies across processes",
                    hint="use hashlib.sha256 over a canonical encoding instead",
                )


@register_rule
class NondetRandomRule(Rule):
    name = "nondet-random"
    description = (
        "module-level random/np.random call draws from hidden global state; "
        "thread an explicitly seeded Generator/Random instance instead"
    )

    #: Constructors and state plumbing that are fine to touch on the module.
    _EXEMPT = frozenset(
        {
            "Random",
            "SystemRandom",
            "default_rng",
            "Generator",
            "SeedSequence",
            "PCG64",
            "Philox",
            "RandomState",
            "seed",
            "get_state",
            "set_state",
            "getstate",
            "setstate",
        }
    )

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        imports = module.imported_modules()
        tracks_random = "random" in imports
        tracks_numpy = bool(imports & {"numpy", "numpy.random"})
        if not (tracks_random or tracks_numpy):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            parts = dotted.split(".")
            if len(parts) < 2 or parts[-1] in self._EXEMPT:
                continue
            prefix = ".".join(parts[:-1])
            if (tracks_random and prefix == "random") or (
                tracks_numpy and prefix in ("np.random", "numpy.random")
            ):
                yield self.finding(
                    module,
                    node,
                    f"{dotted}() draws from the global RNG — result depends on "
                    "import order and prior draws",
                    hint="accept a seeded np.random.Generator / random.Random "
                    "and draw from it",
                )


@register_rule
class NondetTimeRule(Rule):
    name = "nondet-time"
    description = (
        "wall clock / pid / uuid flowing into a fingerprint or digest — the "
        "identity would differ on every run"
    )

    _SOURCES = frozenset({"time.time", "os.getpid", "uuid.uuid1", "uuid.uuid4"})
    _SINK_MARKERS = ("fingerprint", "digest", "sha256", "sha1", "md5", "blake2", "seal")

    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _dotted_name(node.func) in self._SOURCES):
                continue
            if self._in_fingerprint_context(module, node):
                yield self.finding(
                    module,
                    node,
                    f"{_dotted_name(node.func)}() feeds a fingerprint/digest "
                    "computation — the identity changes every run",
                    hint="derive fingerprints only from declared inputs (spec, "
                    "seed, format version); record wall-clock separately",
                )

    def _in_fingerprint_context(self, module: Module, node: ast.AST) -> bool:
        current = node
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call) and current is not ancestor.func:
                name = _dotted_name(ancestor.func).lower()
                if any(marker in name for marker in self._SINK_MARKERS):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if "fingerprint" in ancestor.name.lower():
                    return True
            current = ancestor
        return False
