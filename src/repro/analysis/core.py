"""The detlint rule engine: findings, pragmas, modules, and the analysis driver.

The analyzer certifies the determinism contract the rest of the repo depends
on — identical ``(spec, seed)`` fingerprints must produce bit-identical
images — by checking its *source* instead of trusting golden tests to catch a
violation after the fact.  Everything here is stdlib-only (:mod:`ast`,
:mod:`re`, :mod:`os`): the analyzer must run in the leanest CI image.

Concepts:

* :class:`Finding` — one violation with a precise span, a message, and a fix
  hint.  Its :meth:`~Finding.key` deliberately excludes the line number so a
  committed baseline survives unrelated edits above the finding.
* :class:`Module` — one parsed source file: AST, source lines, parent links,
  and the ``# detlint: ignore[rule]`` pragma table.
* :class:`Project` — the whole analyzed tree; rules use it for cross-module
  facts (e.g. which packages are threaded with fault-injection points).
* :class:`Rule` — a named check over one module.  Rules register themselves
  via :func:`register_rule` and are selected with ``--rule`` (exact name or
  family prefix such as ``nondet``).

The driver (:func:`analyze`) walks the requested paths **sorted** — the
analyzer holds itself to the invariants it enforces — parses every
``*.py`` file, runs the selected rules, and drops findings suppressed by a
pragma on the offending line or the line above.
"""

from __future__ import annotations

import ast
import os
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "all_rule_names",
    "analyze",
    "iter_python_files",
    "register_rule",
    "resolve_rules",
    "rule_descriptions",
]


class AnalysisError(RuntimeError):
    """Raised for unusable inputs (missing paths, unknown rules, bad syntax)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: the rule name that produced it.
        path: display path of the offending file (posix, relative to the
            analysis root) — this is the path baselines and reports show.
        line: 1-based line of the offending node.
        col: 1-based column.
        message: what is wrong, with enough context to be a stable identity.
        hint: how to fix it (or how to silence it when intentional).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: rule + file + message, line numbers excluded."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


#: ``# detlint: ignore[rule-a,rule-b] <optional justification>``
PRAGMA_RE = re.compile(r"#\s*detlint:\s*ignore\[([^\]]*)\]")


def _scan_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number → rule names ignored on that line."""
    pragmas: dict[int, frozenset[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
        if rules:
            pragmas[number] = rules
    return pragmas


@dataclass
class Module:
    """One parsed source file plus the derived tables rules need."""

    path: str  # absolute filesystem path
    display_path: str  # posix path relative to the analysis root (the key)
    source: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    pragmas: dict[int, frozenset[str]] = field(repr=False)
    parents: dict[ast.AST, ast.AST] = field(repr=False)

    @classmethod
    def parse(cls, path: str, root: str) -> "Module":
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise AnalysisError(f"{path}: cannot parse: {error}") from error
        display = os.path.relpath(path, root).replace(os.sep, "/")
        lines = source.splitlines()
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return cls(
            path=path,
            display_path=display,
            source=source,
            tree=tree,
            lines=lines,
            pragmas=_scan_pragmas(lines),
            parents=parents,
        )

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def imported_modules(self) -> set[str]:
        """Dotted names of every module this file imports (both forms)."""
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                names.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                names.add(node.module)
                names.update(f"{node.module}.{alias.name}" for alias in node.names)
        return names

    def suppressed(self, finding: Finding) -> bool:
        """Whether a pragma on the finding's line (or the one above) covers it."""
        for line in (finding.line, finding.line - 1):
            rules = self.pragmas.get(line)
            if rules and finding.rule in rules:
                return True
        return False


class Project:
    """The analyzed module set, with lazily-computed cross-module facts."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules = list(modules)
        self._fault_threaded_dirs: set[str] | None = None

    def fault_threaded_dirs(self) -> set[str]:
        """Directories containing a module wired to the fault-injection plane.

        A package counts as fault-threaded when *any* module in it imports
        :mod:`repro.faults` machinery: an ``except Exception`` anywhere in
        such a package sits on a code path a simulated crash or lease-loss
        signal may travel through, so it must re-raise or carry a pragma.
        """
        if self._fault_threaded_dirs is None:
            dirs: set[str] = set()
            for module in self.modules:
                imports = module.imported_modules()
                if any(name == "repro.faults" or name.startswith("repro.faults.") for name in imports):
                    dirs.add(os.path.dirname(module.path))
            self._fault_threaded_dirs = dirs
        return self._fault_threaded_dirs

    def is_fault_threaded(self, module: Module) -> bool:
        return os.path.dirname(module.path) in self.fault_threaded_dirs()


class Rule(ABC):
    """One named check.  Subclasses register via :func:`register_rule`."""

    #: unique kebab-case rule name; the family is the prefix before the first
    #: dash (``nondet-walk`` → family ``nondet``).
    name: str = ""
    description: str = ""

    @abstractmethod
    def check(self, module: Module, project: Project) -> Iterable[Finding]:
        """Yield findings for one module."""

    def finding(
        self, module: Module, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=hint,
        )


_RULES: dict[str, type[Rule]] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding ``rule_class`` to the registry."""
    if not rule_class.name:
        raise ValueError(f"rule class {rule_class.__name__} declares no name")
    if rule_class.name in _RULES:
        raise ValueError(f"rule {rule_class.name!r} is already registered")
    _RULES[rule_class.name] = rule_class
    return rule_class


def _load_builtin_rules() -> None:
    """Import the rule modules so their ``@register_rule`` decorators run."""
    from repro.analysis import (  # noqa: F401  (imported for side effects)
        rules_durability,
        rules_exceptions,
        rules_knobs,
        rules_nondet,
    )


def all_rule_names() -> tuple[str, ...]:
    _load_builtin_rules()
    return tuple(sorted(_RULES))


def rule_descriptions() -> dict[str, str]:
    _load_builtin_rules()
    return {name: _RULES[name].description for name in sorted(_RULES)}


def resolve_rules(selected: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all when ``selected`` is falsy).

    A selector matches a rule by exact name or by family prefix: ``--rule
    nondet`` selects every ``nondet-*`` rule.
    """
    _load_builtin_rules()
    if not selected:
        return [_RULES[name]() for name in sorted(_RULES)]
    names: list[str] = []
    for selector in selected:
        matched = [
            name
            for name in sorted(_RULES)
            if name == selector or name.startswith(selector + "-")
        ]
        if not matched:
            raise AnalysisError(
                f"unknown rule {selector!r}; known rules: {', '.join(sorted(_RULES))}"
            )
        names.extend(matched)
    seen: set[str] = set()
    unique = [name for name in names if not (name in seen or seen.add(name))]
    return [_RULES[name]() for name in unique]


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``*.py`` file under ``paths``, in sorted, deterministic order."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        if not os.path.isdir(path):
            raise AnalysisError(f"no such file or directory: {path!r}")
        for current, dirnames, filenames in os.walk(path):
            dirnames.sort()
            filenames.sort()
            dirnames[:] = [name for name in dirnames if name != "__pycache__"]
            for name in filenames:
                if name.endswith(".py"):
                    yield os.path.join(current, name)


@dataclass
class AnalysisResult:
    """Everything one :func:`analyze` run produced."""

    findings: list[Finding]
    suppressed: list[Finding]
    files: int
    rules: list[str]
    root: str

    def counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for finding in self.findings:
            totals[finding.rule] = totals.get(finding.rule, 0) + 1
        return totals

    def as_dict(self) -> dict:
        return {
            "version": 1,
            "root": self.root,
            "files": self.files,
            "rules": self.rules,
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": len(self.suppressed),
            "counts": self.counts(),
        }


def analyze(
    paths: Sequence[str],
    *,
    rules: Sequence[str] | None = None,
    root: str | None = None,
) -> AnalysisResult:
    """Run the selected rules over every Python file under ``paths``.

    ``root`` anchors display paths (and therefore baseline keys); it defaults
    to the current working directory so ``impressions analyze src`` from the
    repo root produces stable ``src/repro/...`` keys on every machine.
    """
    root = os.path.abspath(root or os.getcwd())
    active = resolve_rules(rules)
    modules = [Module.parse(path, root) for path in iter_python_files(paths)]
    if not modules:
        raise AnalysisError(f"no Python files found under {list(paths)!r}")
    project = Project(modules)
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for module in modules:
        for rule in active:
            for finding in rule.check(module, project):
                (suppressed if module.suppressed(finding) else findings).append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    _count_on_telemetry(findings, suppressed, len(modules))
    return AnalysisResult(
        findings=findings,
        suppressed=suppressed,
        files=len(modules),
        rules=[rule.name for rule in active],
        root=root,
    )


def _count_on_telemetry(
    findings: Sequence[Finding], suppressed: Sequence[Finding], files: int
) -> None:
    """Surface per-rule finding counters on the bound telemetry, if any."""
    from repro.obs import core as obs_core

    telemetry = obs_core.current()
    if telemetry is None:
        return
    telemetry.counter("analysis_files_total", "source files analyzed").inc(files)
    counter = telemetry.counter(
        "analysis_findings_total", "detlint findings by rule", ("rule",)
    )
    for finding in findings:
        counter.inc(rule=finding.rule)
    telemetry.counter(
        "analysis_suppressed_total", "findings silenced by pragmas"
    ).inc(len(suppressed))
