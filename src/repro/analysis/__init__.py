"""repro.analysis — detlint: determinism & cache-soundness static analysis.

A dependency-free (stdlib ``ast``) analyzer that certifies, at the source
level, the invariants the rest of the repo merely assumes at runtime:

* **knob purity** — every ``Stage`` reads exactly the config knobs it
  declares in ``config_knobs``, so stage fingerprints cover precisely the
  inputs that influence output (no cache poisoning, no false misses);
* **nondeterminism** — no unsorted directory enumeration, set-iteration into
  fingerprints, builtin ``hash()``, unseeded module-level randomness, or
  wall-clock values feeding digests;
* **exception safety** — fault-injection crashes and kill signals are never
  silently swallowed;
* **durability discipline** — durable writes go through the atomic-write
  layer and sqlite mutations run under ``BEGIN IMMEDIATE``.

Entry points: :func:`analyze` (library), ``impressions analyze`` (CLI).
Findings can be suppressed per line with ``# detlint: ignore[rule]`` or
accepted wholesale in a committed baseline file (see
:mod:`repro.analysis.baseline`).
"""

from repro.analysis.baseline import Baseline, BaselineSplit, split_findings
from repro.analysis.core import (
    AnalysisError,
    AnalysisResult,
    Finding,
    Module,
    Project,
    Rule,
    all_rule_names,
    analyze,
    iter_python_files,
    register_rule,
    resolve_rules,
    rule_descriptions,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "Baseline",
    "BaselineSplit",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "all_rule_names",
    "analyze",
    "iter_python_files",
    "register_rule",
    "render_json",
    "render_text",
    "resolve_rules",
    "rule_descriptions",
    "split_findings",
]
