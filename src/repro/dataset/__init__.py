"""Synthetic empirical dataset (substitute for the Microsoft metadata corpus).

The paper's "desired" distributions come from a proprietary five-year dataset
of over 60,000 Windows file-system snapshots.  Offline we synthesise an
equivalent corpus by sampling the very distributions the original study
published (Table 2): each synthetic snapshot records per-file and
per-directory metadata exactly as the study's crawler would, so the analysis,
curve-fitting, interpolation and accuracy experiments exercise the same code
paths as they would against the real data.

* :mod:`repro.dataset.snapshot` — the snapshot record types.
* :mod:`repro.dataset.synthetic` — snapshot synthesis at arbitrary
  file-system sizes.
* :mod:`repro.dataset.study` — the analysis pass that turns snapshots (or a
  generated image) into the distribution curves the figures compare.
"""

from repro.dataset.importer import fit_models_from_snapshot, import_directory_tree
from repro.dataset.snapshot import DirectoryRecord, FileRecord, FileSystemSnapshot
from repro.dataset.study import DistributionSet, analyze_image, analyze_snapshot
from repro.dataset.synthetic import SyntheticDatasetBuilder

__all__ = [
    "FileRecord",
    "DirectoryRecord",
    "FileSystemSnapshot",
    "SyntheticDatasetBuilder",
    "DistributionSet",
    "analyze_snapshot",
    "analyze_image",
    "import_directory_tree",
    "fit_models_from_snapshot",
]
