"""Distribution analysis of snapshots and generated images.

This is the reproduction of the *measurement* side of the file-system studies
the paper builds on: given a snapshot (or a generated image) it computes every
distribution the accuracy figures compare —

* directories by namespace depth (Figure 2(a)),
* directories by subdirectory count (Figure 2(b), cumulative),
* files by size and bytes by file size in power-of-two bins (Figures 2(c)/(d)),
* extension popularity shares (Figure 2(e)),
* files by namespace depth (Figures 2(f)/(h)),
* mean bytes per file by depth (Figure 2(g)),
* per-directory file counts (the inverse-polynomial target).

Both the "desired" side (from the dataset / default models) and the
"generated" side (from an Impressions image) are expressed as a
:class:`DistributionSet`, so accuracy is a symmetric comparison and the MDCC
table falls out directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.dataset.snapshot import FileSystemSnapshot
from repro.metadata.extensions import DEFAULT_EXTENSION_MODEL, ExtensionPopularityModel
from repro.stats.goodness_of_fit import mdcc_from_fractions
from repro.stats.histograms import PowerOfTwoHistogram, depth_histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.image import FileSystemImage

__all__ = ["DistributionSet", "analyze_snapshot", "analyze_image", "compare_distribution_sets"]

#: Maximum namespace depth tracked by the per-depth histograms (Figure 2 uses 16).
MAX_TRACKED_DEPTH = 16


@dataclass
class DistributionSet:
    """Every per-image distribution the accuracy experiments look at."""

    directories_by_depth: np.ndarray
    subdirectory_counts: list[int]
    file_size_histogram: PowerOfTwoHistogram
    extension_shares: Mapping[str, float]
    files_by_depth: np.ndarray
    mean_bytes_by_depth: Mapping[int, float]
    directory_file_counts: list[int]
    total_files: int = 0
    total_directories: int = 0
    total_bytes: int = 0
    label: str = ""
    extras: dict = field(default_factory=dict)

    def directories_by_depth_fractions(self) -> np.ndarray:
        total = self.directories_by_depth.sum()
        if total == 0:
            return np.zeros_like(self.directories_by_depth)
        return self.directories_by_depth / total

    def files_by_depth_fractions(self) -> np.ndarray:
        total = self.files_by_depth.sum()
        if total == 0:
            return np.zeros_like(self.files_by_depth)
        return self.files_by_depth / total

    def subdirectory_count_cdf(self, max_count: int = 16) -> np.ndarray:
        """Cumulative % of directories with at most k subdirectories (Fig. 2(b))."""
        counts = np.asarray(self.subdirectory_counts)
        if counts.size == 0:
            return np.ones(max_count + 1)
        return np.asarray(
            [(counts <= k).mean() for k in range(max_count + 1)], dtype=float
        )

    def directory_file_count_cdf(self, max_count: int = 64) -> np.ndarray:
        counts = np.asarray(self.directory_file_counts)
        if counts.size == 0:
            return np.ones(max_count + 1)
        return np.asarray(
            [(counts <= k).mean() for k in range(max_count + 1)], dtype=float
        )


def analyze_snapshot(
    snapshot: FileSystemSnapshot,
    extension_model: ExtensionPopularityModel = DEFAULT_EXTENSION_MODEL,
    label: str | None = None,
) -> DistributionSet:
    """Compute the full distribution set of a crawled snapshot."""
    return _analyze(
        file_sizes=snapshot.file_sizes(),
        file_depths=snapshot.file_depths(),
        directory_depths=snapshot.directory_depths(),
        subdirectory_counts=snapshot.subdirectory_counts(),
        directory_file_counts=snapshot.directory_file_counts(),
        extension_counts=snapshot.extension_counts(),
        extension_model=extension_model,
        label=label or snapshot.hostname,
    )


def analyze_image(
    image: "FileSystemImage",
    extension_model: ExtensionPopularityModel = DEFAULT_EXTENSION_MODEL,
    label: str = "generated",
) -> DistributionSet:
    """Compute the full distribution set of a generated image."""
    tree = image.tree
    return _analyze(
        file_sizes=tree.file_sizes(),
        file_depths=[file.depth for file in tree.files],
        directory_depths=[directory.depth for directory in tree.directories],
        subdirectory_counts=tree.directory_subdir_counts(),
        directory_file_counts=tree.directory_file_counts(),
        extension_counts=tree.extension_counts(),
        extension_model=extension_model,
        label=label,
    )


def _analyze(
    file_sizes: list[int],
    file_depths: list[int],
    directory_depths: list[int],
    subdirectory_counts: list[int],
    directory_file_counts: list[int],
    extension_counts: Mapping[str, int],
    extension_model: ExtensionPopularityModel,
    label: str,
) -> DistributionSet:
    sizes = np.asarray(file_sizes, dtype=float)
    file_depth_array = np.asarray(file_depths, dtype=int)

    mean_bytes_by_depth: dict[int, float] = {}
    for depth in range(0, MAX_TRACKED_DEPTH + 1):
        mask = file_depth_array == depth
        if mask.any():
            mean_bytes_by_depth[depth] = float(sizes[mask].mean())

    return DistributionSet(
        directories_by_depth=depth_histogram(directory_depths, max_depth=MAX_TRACKED_DEPTH),
        subdirectory_counts=list(subdirectory_counts),
        file_size_histogram=PowerOfTwoHistogram.from_values(sizes) if sizes.size else PowerOfTwoHistogram.from_values([1.0]),
        extension_shares=extension_model.observed_shares(extension_counts),
        files_by_depth=depth_histogram(file_depths, max_depth=MAX_TRACKED_DEPTH),
        mean_bytes_by_depth=mean_bytes_by_depth,
        directory_file_counts=list(directory_file_counts),
        total_files=len(file_sizes),
        total_directories=len(directory_depths),
        total_bytes=int(sizes.sum()) if sizes.size else 0,
        label=label,
    )


def compare_distribution_sets(desired: DistributionSet, generated: DistributionSet) -> dict[str, float]:
    """MDCC between a desired and a generated distribution set (Table 3 rows).

    Returns one MDCC value per parameter.  For "bytes with depth" the paper
    reports the mean absolute difference in mean-bytes-per-file (in MB)
    instead, because MDCC is not meaningful for a per-depth mean; we do the
    same under the key ``bytes_with_depth_mb``.
    """
    results: dict[str, float] = {}

    results["directory_count_with_depth"] = mdcc_from_fractions(
        desired.directories_by_depth_fractions(), generated.directories_by_depth_fractions()
    )

    results["directory_size_subdirectories"] = _cdf_mdcc(
        desired.subdirectory_count_cdf(), generated.subdirectory_count_cdf()
    )

    desired_hist, generated_hist = desired.file_size_histogram.aligned_with(
        generated.file_size_histogram
    )
    results["file_size_by_count"] = mdcc_from_fractions(
        desired_hist.count_fractions(), generated_hist.count_fractions()
    )
    results["file_size_by_bytes"] = mdcc_from_fractions(
        desired_hist.byte_fractions(), generated_hist.byte_fractions()
    )

    labels = sorted(set(desired.extension_shares) | set(generated.extension_shares))
    results["extension_popularity"] = mdcc_from_fractions(
        [desired.extension_shares.get(label, 0.0) for label in labels],
        [generated.extension_shares.get(label, 0.0) for label in labels],
    )

    results["file_count_with_depth"] = mdcc_from_fractions(
        desired.files_by_depth_fractions(), generated.files_by_depth_fractions()
    )

    depths = sorted(set(desired.mean_bytes_by_depth) & set(generated.mean_bytes_by_depth))
    if depths:
        differences = [
            abs(desired.mean_bytes_by_depth[d] - generated.mean_bytes_by_depth[d]) for d in depths
        ]
        results["bytes_with_depth_mb"] = float(np.mean(differences)) / (1024.0 * 1024.0)
    else:
        results["bytes_with_depth_mb"] = float("nan")

    results["directory_size_files"] = _cdf_mdcc(
        desired.directory_file_count_cdf(), generated.directory_file_count_cdf()
    )
    return results


def _cdf_mdcc(cdf_a: np.ndarray, cdf_b: np.ndarray) -> float:
    length = min(len(cdf_a), len(cdf_b))
    return float(np.max(np.abs(cdf_a[:length] - cdf_b[:length])))
