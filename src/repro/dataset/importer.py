"""Import a real directory tree as a dataset snapshot.

"A user may want to use file system datasets other than the default choice.
To enable this, Impressions provides automatic curve-fitting of empirical
data."  The importer is the front half of that workflow: point it at any
directory the benchmarking host can read, and it produces the same
:class:`~repro.dataset.snapshot.FileSystemSnapshot` records the synthetic
corpus uses — which the analysis (:mod:`repro.dataset.study`) and the fitters
(:mod:`repro.stats.fitting`) then consume to derive user-specified
distributions for image generation.
"""

from __future__ import annotations

import os

from repro.dataset.snapshot import DirectoryRecord, FileRecord, FileSystemSnapshot
from repro.metadata.filesizes import DEFAULT_TAIL_XM
from repro.stats.fitting import fit_hybrid_lognormal_pareto, fit_lognormal, fit_poisson
from repro.stats.distributions import Distribution

__all__ = ["import_directory_tree", "fit_models_from_snapshot"]


def import_directory_tree(
    root_path: str,
    hostname: str | None = None,
    follow_symlinks: bool = False,
    max_files: int | None = None,
) -> FileSystemSnapshot:
    """Crawl ``root_path`` and record per-file and per-directory metadata.

    Symlinks are skipped by default (a crawler following them can loop);
    unreadable entries are silently ignored, matching what a metadata crawler
    on a live system has to do.  ``max_files`` bounds the crawl for tests and
    interactive use.
    """
    root_path = os.path.abspath(root_path)
    if not os.path.isdir(root_path):
        raise ValueError(f"{root_path!r} is not a directory")

    snapshot = FileSystemSnapshot(hostname=hostname or root_path, capacity_bytes=0)
    directory_ids: dict[str, int] = {}
    root_depth = root_path.rstrip(os.sep).count(os.sep)

    for current, directories, files in os.walk(root_path, followlinks=follow_symlinks):
        # os.walk yields entries in on-disk order, which varies by filesystem;
        # sorting in place pins record order AND the recursion order, so the
        # same tree always yields the same snapshot (and directory ids).
        directories.sort()
        files.sort()
        depth = current.rstrip(os.sep).count(os.sep) - root_depth
        directory_id = directory_ids.setdefault(current, len(directory_ids))
        file_count = 0
        total_bytes_here = 0
        for name in files:
            path = os.path.join(current, name)
            try:
                if not follow_symlinks and os.path.islink(path):
                    continue
                size = os.path.getsize(path)
            except OSError:
                continue
            extension = os.path.splitext(name)[1].lstrip(".").lower()
            snapshot.files.append(
                FileRecord(
                    size=int(size),
                    depth=depth + 1,
                    extension=extension,
                    directory_id=directory_id,
                )
            )
            file_count += 1
            total_bytes_here += size
            if max_files is not None and len(snapshot.files) >= max_files:
                break
        snapshot.directories.append(
            DirectoryRecord(
                directory_id=directory_id,
                depth=depth,
                subdirectory_count=len(directories),
                file_count=file_count,
            )
        )
        snapshot.capacity_bytes += total_bytes_here
        if max_files is not None and len(snapshot.files) >= max_files:
            break
    return snapshot


def fit_models_from_snapshot(snapshot: FileSystemSnapshot) -> dict[str, Distribution]:
    """Automatic curve fitting of the distributions Impressions needs.

    Returns a dictionary with a fitted ``file_size_by_count`` model (hybrid
    when the snapshot contains files beyond the 512 MB tail threshold, plain
    lognormal otherwise), a ``file_depth`` Poisson model and, when the
    snapshot holds enough data, a ``directory_file_count`` model offset.  The
    result plugs straight into :class:`~repro.core.config.ImpressionsConfig`.
    """
    if snapshot.file_count == 0:
        raise ValueError("cannot fit models from an empty snapshot")
    sizes = [size for size in snapshot.file_sizes() if size > 0]
    models: dict[str, Distribution] = {}
    if not sizes:
        raise ValueError("snapshot contains no non-empty files to fit")
    if any(size >= DEFAULT_TAIL_XM for size in sizes) and len(sizes) >= 10:
        models["file_size_by_count"] = fit_hybrid_lognormal_pareto(
            sizes, tail_threshold=DEFAULT_TAIL_XM
        )
    else:
        models["file_size_by_count"] = fit_lognormal(sizes)
    depths = snapshot.file_depths()
    if depths:
        models["file_depth"] = fit_poisson(depths)
    return models
