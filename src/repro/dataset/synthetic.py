"""Synthetic "empirical" corpus builder.

Stands in for the proprietary Windows metadata dataset (see DESIGN.md).  A
:class:`SyntheticDatasetBuilder` produces :class:`FileSystemSnapshot` objects
whose marginal statistics follow the published default models of Table 2,
with a size-dependent twist used by the interpolation experiments: the
file-size distribution shifts slightly with the file-system capacity (larger
file systems hold relatively more large files), so curves at 10/50/100 GB are
genuinely different and interpolating between them is a meaningful exercise,
exactly as in Figures 4 and 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dataset.snapshot import DirectoryRecord, FileRecord, FileSystemSnapshot
from repro.metadata.extensions import DEFAULT_EXTENSION_MODEL, ExtensionPopularityModel
from repro.metadata.filesizes import (
    DEFAULT_BODY_MU,
    DEFAULT_BODY_SIGMA,
    default_file_size_by_count_model,
)
from repro.namespace.generative_model import GenerativeTreeModel
from repro.namespace.placement import FilePlacer, PlacementModel
from repro.stats.distributions import HybridLognormalPareto

__all__ = ["SyntheticDatasetBuilder", "DatasetScale"]

GIB = 1024**3


@dataclass(frozen=True)
class DatasetScale:
    """How snapshot composition scales with file-system capacity.

    ``mu_shift_per_doubling`` moves the lognormal body's µ up for every
    doubling of capacity relative to the 10 GB reference point — bigger file
    systems hold bigger files, the effect the interpolation experiments rely
    on.  ``files_per_gib`` fixes the namespace population density.
    """

    files_per_gib: float = 4400.0
    directories_per_file: float = 0.2
    mu_shift_per_doubling: float = 0.35
    reference_capacity_gib: float = 10.0


class SyntheticDatasetBuilder:
    """Builds synthetic snapshots with capacity-dependent distributions."""

    def __init__(
        self,
        scale: DatasetScale | None = None,
        extension_model: ExtensionPopularityModel = DEFAULT_EXTENSION_MODEL,
        seed: int = 2009,
    ) -> None:
        self._scale = scale or DatasetScale()
        self._extensions = extension_model
        self._seed = seed

    @property
    def scale(self) -> DatasetScale:
        return self._scale

    def size_model_for_capacity(self, capacity_gib: float) -> HybridLognormalPareto:
        """The file-size-by-count model used at a given capacity."""
        if capacity_gib <= 0:
            raise ValueError("capacity_gib must be positive")
        doublings = math.log2(capacity_gib / self._scale.reference_capacity_gib)
        mu = DEFAULT_BODY_MU + self._scale.mu_shift_per_doubling * doublings
        return default_file_size_by_count_model(mu=mu, sigma=DEFAULT_BODY_SIGMA)

    def expected_file_count(self, capacity_gib: float) -> int:
        return max(10, int(self._scale.files_per_gib * capacity_gib))

    def build_snapshot(
        self,
        capacity_gib: float,
        hostname: str | None = None,
        max_files: int | None = None,
        seed: int | None = None,
    ) -> FileSystemSnapshot:
        """Synthesise one snapshot of roughly ``capacity_gib`` gigabytes.

        ``max_files`` caps the population so corpus construction stays fast in
        tests; statistics are unchanged because files are an i.i.d. sample.
        """
        rng = np.random.default_rng(self._seed if seed is None else seed)
        num_files = self.expected_file_count(capacity_gib)
        if max_files is not None:
            num_files = min(num_files, max_files)
        num_directories = max(2, int(num_files * self._scale.directories_per_file))

        tree = GenerativeTreeModel().generate(num_directories, rng)
        placement = PlacementModel()
        placer = FilePlacer(tree=tree, model=placement, rng=rng)

        size_model = self.size_model_for_capacity(capacity_gib)
        sizes = np.asarray(size_model.sample(rng, num_files), dtype=float)
        extensions = self._extensions.sample_extensions(rng, num_files)

        directory_index = {id(directory): index for index, directory in enumerate(tree.directories)}
        snapshot = FileSystemSnapshot(
            hostname=hostname or f"synthetic-{capacity_gib:g}g",
            capacity_bytes=int(capacity_gib * GIB),
        )
        per_directory_counts: dict[int, int] = {}
        for size, extension in zip(sizes, extensions):
            parent = placer.place(int(size))
            parent_id = directory_index[id(parent)]
            per_directory_counts[parent_id] = per_directory_counts.get(parent_id, 0) + 1
            snapshot.files.append(
                FileRecord(
                    size=int(size),
                    depth=parent.depth + 1,
                    extension=extension,
                    directory_id=parent_id,
                )
            )
        for index, directory in enumerate(tree.directories):
            snapshot.directories.append(
                DirectoryRecord(
                    directory_id=index,
                    depth=directory.depth,
                    subdirectory_count=directory.subdirectory_count,
                    file_count=per_directory_counts.get(index, 0),
                )
            )
        return snapshot

    def build_corpus(
        self,
        capacities_gib: list[float],
        max_files_per_snapshot: int | None = None,
    ) -> dict[float, FileSystemSnapshot]:
        """Snapshots at each requested capacity, keyed by capacity in GiB."""
        corpus: dict[float, FileSystemSnapshot] = {}
        for index, capacity in enumerate(capacities_gib):
            corpus[capacity] = self.build_snapshot(
                capacity_gib=capacity,
                max_files=max_files_per_snapshot,
                seed=self._seed + index,
            )
        return corpus
