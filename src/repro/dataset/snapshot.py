"""File-system snapshot records.

A snapshot is what a metadata crawler (like the one behind the five-year
Windows study) records for one machine: one :class:`FileRecord` per file and
one :class:`DirectoryRecord` per directory, with no file content.  Snapshots
are the input to the analysis in :mod:`repro.dataset.study` and the output of
the synthetic corpus builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["FileRecord", "DirectoryRecord", "FileSystemSnapshot"]


@dataclass(frozen=True)
class FileRecord:
    """Metadata of one file as recorded by a crawler."""

    size: int
    depth: int
    extension: str
    directory_id: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("file size must be non-negative")
        if self.depth < 0:
            raise ValueError("depth must be non-negative")


@dataclass(frozen=True)
class DirectoryRecord:
    """Metadata of one directory as recorded by a crawler."""

    directory_id: int
    depth: int
    subdirectory_count: int
    file_count: int

    def __post_init__(self) -> None:
        if self.depth < 0:
            raise ValueError("depth must be non-negative")
        if self.subdirectory_count < 0 or self.file_count < 0:
            raise ValueError("counts must be non-negative")


@dataclass
class FileSystemSnapshot:
    """One crawled file system: its files, directories and capacity."""

    hostname: str
    capacity_bytes: int
    files: list[FileRecord] = field(default_factory=list)
    directories: list[DirectoryRecord] = field(default_factory=list)

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def directory_count(self) -> int:
        return len(self.directories)

    @property
    def used_bytes(self) -> int:
        return sum(record.size for record in self.files)

    def file_sizes(self) -> list[int]:
        return [record.size for record in self.files]

    def file_depths(self) -> list[int]:
        return [record.depth for record in self.files]

    def directory_depths(self) -> list[int]:
        return [record.depth for record in self.directories]

    def subdirectory_counts(self) -> list[int]:
        return [record.subdirectory_count for record in self.directories]

    def directory_file_counts(self) -> list[int]:
        return [record.file_count for record in self.directories]

    def extension_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.files:
            key = record.extension or "null"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def iter_files(self) -> Iterator[FileRecord]:
        return iter(self.files)

    def summary(self) -> dict:
        return {
            "hostname": self.hostname,
            "capacity_bytes": self.capacity_bytes,
            "files": self.file_count,
            "directories": self.directory_count,
            "used_bytes": self.used_bytes,
        }


def merge_snapshots(snapshots: Iterable[FileSystemSnapshot], hostname: str = "merged") -> FileSystemSnapshot:
    """Pool several snapshots into one (used for corpus-wide statistics)."""
    merged = FileSystemSnapshot(hostname=hostname, capacity_bytes=0)
    directory_offset = 0
    for snapshot in snapshots:
        merged.capacity_bytes += snapshot.capacity_bytes
        id_map = {}
        for record in snapshot.directories:
            new_id = record.directory_id + directory_offset
            id_map[record.directory_id] = new_id
            merged.directories.append(
                DirectoryRecord(
                    directory_id=new_id,
                    depth=record.depth,
                    subdirectory_count=record.subdirectory_count,
                    file_count=record.file_count,
                )
            )
        for record in snapshot.files:
            merged.files.append(
                FileRecord(
                    size=record.size,
                    depth=record.depth,
                    extension=record.extension,
                    directory_id=id_map.get(record.directory_id, record.directory_id + directory_offset),
                )
            )
        directory_offset += max((r.directory_id for r in snapshot.directories), default=0) + 1
    return merged
