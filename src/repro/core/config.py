"""Impressions configuration — the knobs of Table 2.

:class:`ImpressionsConfig` collects every user-controllable parameter.  The
two modes of operation from Section 3.1 map onto it directly:

* **automated mode** — construct the config with only the desired file-system
  size (or file count); every distribution keeps its default from Table 2.
* **user-specified mode** — override any subset of parameters; the framework
  resolves the remaining ones and reconciles conflicting constraints via the
  constraint resolver.

Reproducibility (Section 3.1) is guaranteed by recording the seed and every
distribution's parameters in the :class:`~repro.core.report.ReproducibilityReport`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.content.generators import ContentPolicy
from repro.metadata.extensions import DEFAULT_EXTENSION_MODEL, ExtensionPopularityModel
from repro.metadata.filesizes import (
    default_file_size_by_bytes_model,
    default_file_size_by_count_model,
    simple_lognormal_size_model,
)
from repro.metadata.timestamps import TimestampModel
from repro.namespace.placement import DEFAULT_MEAN_BYTES_BY_DEPTH, PlacementModel
from repro.namespace.special_dirs import DEFAULT_SPECIAL_DIRECTORIES, SpecialDirectorySpec
from repro.stats.distributions import (
    Distribution,
    InversePolynomialDistribution,
    ShiftedPoissonDistribution,
)

__all__ = ["ImpressionsConfig", "GIB", "MIB", "KNOB_NAMES"]

GIB = 1024**3
MIB = 1024**2

#: Default image shape used throughout the paper's evaluation: 4.55 GB,
#: 20 000 files, 4 000 directories (Image1 of Table 6).
DEFAULT_FS_BYTES = int(4.55 * GIB)
DEFAULT_NUM_FILES = 20_000
DEFAULT_NUM_DIRECTORIES = 4_000

#: The JSON-scalar knob set understood by :meth:`ImpressionsConfig.to_knobs` /
#: :meth:`ImpressionsConfig.from_knobs` — the parameters campaign specs can
#: set and sweep.
KNOB_NAMES = frozenset(
    {
        "fs_size_bytes",
        "num_files",
        "num_directories",
        "use_simple_size_model",
        "attachment_offset",
        "use_multiplicative_depth_model",
        "enforce_fs_size",
        "beta",
        "max_oversampling_factor",
        "content_model",
        "layout_score",
        "disk_capacity_bytes",
        "block_size",
        "files_per_directory",
        "special_directories",
        "seed",
    }
)


@dataclass
class ImpressionsConfig:
    """Complete parameter set for one file-system image.

    Attributes mirror Table 2; ``None`` means "derive from the other
    parameters / use the default distribution".

    Attributes:
        fs_size_bytes: total used space the image should occupy.  When both
            ``fs_size_bytes`` and ``num_files`` are given, the constraint
            resolver reconciles the sampled file sizes against the target sum.
        num_files: number of files; derived from ``fs_size_bytes`` and the
            mean of the file-size model when omitted.
        num_directories: number of directories; derived from ``num_files``
            using the dataset's files-per-directory ratio when omitted.
        file_size_model: distribution of file sizes by count (hybrid
            lognormal + Pareto tail by default).
        file_size_by_bytes_model: distribution of file sizes weighted by
            bytes (mixture of lognormals); used for dataset synthesis and
            reporting, not for direct sampling.
        use_simple_size_model: replace the hybrid model with the plain
            lognormal (the paper's earlier, inferior model — kept for the
            ablation).
        extension_model: extension popularity percentile model.
        depth_distribution: Poisson model of file count by depth.
        mean_bytes_by_depth: target mean file size per depth.
        directory_file_count_model: inverse-polynomial directories-by-file-count
            model.
        special_directories: special-directory specs (empty tuple disables).
        attachment_offset: the ``+2`` constant of the generative tree model.
        enforce_fs_size: run the multi-constraint resolver so sampled sizes
            sum to ``fs_size_bytes`` within ``beta``.
        beta: allowed relative error on the total size.
        max_oversampling_factor: λ of the constraint resolver.
        content: content-generation policy.
        generate_content: whether to generate content at all (metadata-only
            images are much faster and sufficient for many experiments).
        layout_score: target on-disk layout score (1.0 = perfect layout).
        disk_capacity_bytes: capacity of the simulated disk; defaults to
            1.5 × ``fs_size_bytes``.
        block_size: block size of the simulated disk.
        files_per_directory: used to derive ``num_directories`` when omitted.
        seed: master random seed (reported for reproducibility).
    """

    fs_size_bytes: int | None = DEFAULT_FS_BYTES
    num_files: int | None = DEFAULT_NUM_FILES
    num_directories: int | None = DEFAULT_NUM_DIRECTORIES

    file_size_model: Distribution | None = None
    file_size_by_bytes_model: Distribution | None = None
    use_simple_size_model: bool = False

    extension_model: ExtensionPopularityModel = field(
        default_factory=lambda: DEFAULT_EXTENSION_MODEL
    )
    depth_distribution: ShiftedPoissonDistribution = field(
        default_factory=lambda: ShiftedPoissonDistribution(lam=6.49)
    )
    mean_bytes_by_depth: Mapping[int, float] = field(
        default_factory=lambda: dict(DEFAULT_MEAN_BYTES_BY_DEPTH)
    )
    directory_file_count_model: InversePolynomialDistribution = field(
        default_factory=lambda: InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=4096)
    )
    special_directories: Sequence[SpecialDirectorySpec] = DEFAULT_SPECIAL_DIRECTORIES
    attachment_offset: float = 2.0
    use_multiplicative_depth_model: bool = True

    enforce_fs_size: bool = False
    beta: float = 0.05
    max_oversampling_factor: float = 1.0

    content: ContentPolicy = field(default_factory=ContentPolicy)
    generate_content: bool = False

    #: optional file-age/timestamp model; when set every generated file gets
    #: (created, modified, accessed) timestamps sampled relative to
    #: ``timestamp_now`` (POSIX seconds; defaults to the generation time and
    #: is recorded in the reproducibility report).
    timestamp_model: TimestampModel | None = None
    timestamp_now: float | None = None

    layout_score: float = 1.0
    disk_capacity_bytes: int | None = None
    block_size: int = 4096

    files_per_directory: float = 5.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.fs_size_bytes is None and self.num_files is None:
            raise ValueError("at least one of fs_size_bytes or num_files must be given")
        if self.fs_size_bytes is not None and self.fs_size_bytes <= 0:
            raise ValueError("fs_size_bytes must be positive")
        if self.num_files is not None and self.num_files <= 0:
            raise ValueError("num_files must be positive")
        if self.num_directories is not None and self.num_directories < 1:
            raise ValueError("num_directories must be at least 1")
        if not 0.0 < self.layout_score <= 1.0:
            raise ValueError("layout_score must lie in (0, 1]")
        if not 0.0 < self.beta < 1.0:
            raise ValueError("beta must lie in (0, 1)")
        if self.files_per_directory <= 0:
            raise ValueError("files_per_directory must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    # Derived values ------------------------------------------------------------

    def resolved_size_model(self) -> Distribution:
        """The file-size-by-count distribution actually used for sampling."""
        if self.file_size_model is not None:
            return self.file_size_model
        if self.use_simple_size_model:
            return simple_lognormal_size_model()
        return default_file_size_by_count_model()

    def resolved_bytes_model(self) -> Distribution:
        if self.file_size_by_bytes_model is not None:
            return self.file_size_by_bytes_model
        return default_file_size_by_bytes_model()

    def resolved_num_files(self) -> int:
        """File count, deriving it from the FS size when not pinned."""
        if self.num_files is not None:
            return self.num_files
        mean_size = max(self._finite_mean_file_size(), 1.0)
        assert self.fs_size_bytes is not None  # guaranteed by __post_init__
        return max(1, int(round(self.fs_size_bytes / mean_size)))

    def resolved_num_directories(self) -> int:
        if self.num_directories is not None:
            return self.num_directories
        return max(1, int(round(self.resolved_num_files() / self.files_per_directory)))

    def resolved_fs_size_bytes(self) -> int | None:
        return self.fs_size_bytes

    def resolved_disk_capacity(self) -> int:
        if self.disk_capacity_bytes is not None:
            return self.disk_capacity_bytes
        target = self.fs_size_bytes
        if target is None:
            target = int(self.resolved_num_files() * max(self._finite_mean_file_size(), 1.0))
        return int(target * 1.5) + 64 * MIB

    def _finite_mean_file_size(self) -> float:
        """Mean of the size model, falling back to a sampled estimate when the
        analytical mean is infinite (the Pareto tail has k <= 1)."""
        mean = self.resolved_size_model().mean()
        if math.isfinite(mean):
            return float(mean)
        sample = self.resolved_size_model().sample(np.random.default_rng(self.seed), 10_000)
        return float(max(sample.mean(), 1.0))

    def placement_model(self) -> PlacementModel:
        return PlacementModel(
            depth_distribution=self.depth_distribution,
            mean_bytes_by_depth=dict(self.mean_bytes_by_depth),
            directory_file_count=self.directory_file_count_model,
            special_directories=tuple(self.special_directories),
            use_multiplicative_model=self.use_multiplicative_depth_model,
        )

    def with_overrides(self, **overrides) -> "ImpressionsConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    # Knob serialization --------------------------------------------------------

    def to_knobs(self) -> dict:
        """The JSON-scalar view of this config (the sweepable knob set).

        Knobs cover every parameter a declarative campaign spec can set; model
        objects (custom distributions, timestamp models, similarity profiles)
        are intentionally outside this view — a config built through
        :meth:`from_knobs` round-trips exactly, one carrying hand-constructed
        model overrides serializes only its scalar knobs.
        """
        return {
            "fs_size_bytes": self.fs_size_bytes,
            "num_files": self.num_files,
            "num_directories": self.num_directories,
            "use_simple_size_model": self.use_simple_size_model,
            "attachment_offset": self.attachment_offset,
            "use_multiplicative_depth_model": self.use_multiplicative_depth_model,
            "enforce_fs_size": self.enforce_fs_size,
            "beta": self.beta,
            "max_oversampling_factor": self.max_oversampling_factor,
            "content_model": self.content.text_model if self.generate_content else "none",
            "layout_score": self.layout_score,
            "disk_capacity_bytes": self.disk_capacity_bytes,
            "block_size": self.block_size,
            "files_per_directory": self.files_per_directory,
            "special_directories": bool(self.special_directories),
            "seed": self.seed,
        }

    @classmethod
    def from_knobs(cls, knobs: Mapping[str, object]) -> "ImpressionsConfig":
        """Build a config from a knob mapping (see :meth:`to_knobs`).

        Omitted knobs keep their defaults; unknown keys raise ``ValueError``
        so campaign specs fail fast on typos rather than silently sweeping
        nothing.
        """
        unknown = sorted(set(knobs) - KNOB_NAMES)
        if unknown:
            raise ValueError(
                f"unknown config knobs {unknown}; valid knobs: {sorted(KNOB_NAMES)}"
            )
        values = dict(knobs)
        kwargs: dict = {}
        for name in KNOB_NAMES - {"content_model", "special_directories"}:
            if name in values:
                kwargs[name] = values[name]
        if "special_directories" in values:
            kwargs["special_directories"] = (
                DEFAULT_SPECIAL_DIRECTORIES if values["special_directories"] else ()
            )
        content_model = values.get("content_model", "none")
        if not isinstance(content_model, str):
            raise ValueError("content_model knob must be a string")
        if content_model != "none":
            kwargs["generate_content"] = True
            kwargs["content"] = ContentPolicy(text_model=content_model)
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Stable SHA-256 hex digest of the knob view (config+seed identity).

        This identifies the *configuration* only; campaign scenarios extend
        it with their step list (:func:`repro.campaign.spec.scenario_fingerprint`).
        """
        canonical = json.dumps(self.to_knobs(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def parameter_table(self) -> dict[str, str]:
        """Human-readable parameter table (the Table 2 view of this config)."""
        size_model = self.resolved_size_model()
        bytes_model = self.resolved_bytes_model()
        return {
            "Directory count w/ depth": f"Generative model (offset={self.attachment_offset:g})",
            "Directory size (subdirs)": "Generative model",
            "File size by count": size_model.describe(),
            "File size by containing bytes": bytes_model.describe(),
            "Extension popularity": (
                f"Percentile values ({len(self.extension_model.popular_extensions)} popular extensions)"
            ),
            "File count w/ depth": self.depth_distribution.describe(),
            "Bytes with depth": "Mean file size values",
            "Directory size (files)": self.directory_file_count_model.describe(),
            "File count w/ depth (w/ special directories)": (
                f"Conditional probabilities ({len(self.special_directories)} special dirs)"
                if self.special_directories
                else "disabled"
            ),
            "Degree of Fragmentation": f"Layout score ({self.layout_score:g})",
            "File system size": f"{self.fs_size_bytes}" if self.fs_size_bytes else "derived",
            "Number of files": f"{self.resolved_num_files()}",
            "Number of directories": f"{self.resolved_num_directories()}",
            "Content model": self.content.text_model if self.generate_content else "metadata only",
            "Seed": str(self.seed),
        }
