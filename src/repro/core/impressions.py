"""The Impressions generation facade (Section 3.3).

Image creation proceeds in the phases the paper describes and times
(Table 6):

1. **Directory structure** — the generative tree model builds the namespace.
2. **File sizes** — sampled from the configured size model; when the user
   also pinned the total file-system size, the multi-constraint resolver
   reconciles the sample with the target sum.
3. **Extensions** — assigned from the popularity model.
4. **File depth / parent directory** — the multiplicative depth model places
   each file, honouring special-directory biases.
5. **File content** — optional; the chosen word model / typed headers are
   recorded so content can be regenerated lazily and deterministically.
6. **On-disk creation & layout** — files are allocated on the simulated disk
   while the fragmenter steers the layout score toward the target.

Since the pipeline redesign these phases live as composable stages in
:mod:`repro.pipeline` (one :class:`~repro.pipeline.stage.Stage` per phase,
run by a :class:`~repro.pipeline.runner.Pipeline`).  :class:`Impressions`
remains the stable convenience API: ``Impressions(config).generate()`` runs
the default six-stage pipeline and returns an image identical, seed for
seed, to what the historical monolithic generator produced.  Callers that
want stage subsets, progress hooks or the content-addressed stage cache use
the pipeline API directly::

    from repro.pipeline import StageCache, default_pipeline

    result = default_pipeline().run(config, cache=StageCache(cache_dir))
    image = result.image

Every phase's wall-clock time is recorded in the reproducibility report so
the Table 6 benchmark simply reads it back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage

__all__ = ["Impressions", "GenerationTimings"]


@dataclass
class GenerationTimings:
    """Per-phase wall-clock timings, in seconds (the Table 6 breakdown).

    ``extras`` holds named timings of optional phases that run after image
    generation — trace replay (``trace_replay``) and trace-driven aging
    (``trace_aging``) record themselves here — and is merged into
    :meth:`as_dict`, so Table 6 reporting picks the extra rows up without
    knowing about them in advance.  An extras key that collides with a core
    phase key (or ``total``) raises instead of silently shadowing the phase.
    """

    directory_structure: float = 0.0
    file_sizes: float = 0.0
    extensions: float = 0.0
    depth_and_placement: float = 0.0
    content: float = 0.0
    on_disk_creation: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Sum of the six core generation phases.

        ``extras`` entries are deliberately excluded: they time optional
        post-generation work (replay, aging), not image creation, and the
        Table 6 total only covers creation.
        """
        return (
            self.directory_structure
            + self.file_sizes
            + self.extensions
            + self.depth_and_placement
            + self.content
            + self.on_disk_creation
        )

    def as_dict(self) -> dict[str, float]:
        out = {
            "directory_structure": self.directory_structure,
            "file_sizes": self.file_sizes,
            "extensions": self.extensions,
            "depth_and_placement": self.depth_and_placement,
            "content": self.content,
            "on_disk_creation": self.on_disk_creation,
            "total": self.total,
        }
        collisions = sorted(set(self.extras) & set(out))
        if collisions:
            raise ValueError(
                f"extras timing key(s) {collisions} would shadow core phase entries; "
                "record post-generation phases under distinct names"
            )
        out.update(self.extras)
        return out


class Impressions:
    """Generates file-system images from an :class:`ImpressionsConfig`.

    A thin facade over :func:`repro.pipeline.runner.default_pipeline` kept
    for API stability (and as the one-liner the paper's "ease of use" goal
    asks for).
    """

    def __init__(self, config: ImpressionsConfig | None = None) -> None:
        self._config = config or ImpressionsConfig()

    @property
    def config(self) -> ImpressionsConfig:
        return self._config

    def generate(
        self,
        cache_dir: str | None = None,
        on_cache_busy: str = "error",
    ) -> FileSystemImage:
        """Run the full default pipeline and return the generated image.

        ``cache_dir`` enables the content-addressed stage cache under that
        directory.  The directory is locked for the duration of the run:
        a second concurrent ``generate()`` pointed at the same directory gets
        a clear :class:`~repro.pipeline.cache.CacheBusyError` up front (not a
        pickle traceback from racing snapshots) unless
        ``on_cache_busy="ignore"`` opts into sharing — cache writes are
        atomic, so sharing is safe, merely redundant.  Concurrent workers
        should prefer per-worker slices (:func:`repro.shard.shard_cache_slice`).
        """
        from repro.pipeline.cache import StageCache, cache_lock
        from repro.pipeline.runner import default_pipeline

        if cache_dir is None:
            return default_pipeline().run(self._config).image
        with cache_lock(cache_dir, owner="impressions-generate", on_busy=on_cache_busy):
            return default_pipeline().run(self._config, cache=StageCache(cache_dir)).image
