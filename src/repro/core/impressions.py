"""The Impressions generation pipeline (Section 3.3).

Image creation proceeds in the phases the paper describes and times
(Table 6):

1. **Directory structure** — the generative tree model builds the namespace.
2. **File sizes** — sampled from the configured size model; when the user
   also pinned the total file-system size, the multi-constraint resolver
   reconciles the sample with the target sum.
3. **Extensions** — assigned from the popularity model.
4. **File depth / parent directory** — the multiplicative depth model places
   each file, honouring special-directory biases.
5. **File content** — optional; the chosen word model / typed headers are
   recorded so content can be regenerated lazily and deterministically.
6. **On-disk creation & layout** — files are allocated on the simulated disk
   while the fragmenter steers the layout score toward the target.

Every phase's wall-clock time is recorded in the reproducibility report so
the Table 6 benchmark simply reads it back.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.constraints.resolver import ConstraintResolver, ConstraintSpec
from repro.content.generators import ContentGenerator
from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.report import ReproducibilityReport
from repro.layout.disk import SimulatedDisk
from repro.layout.fragmenter import Fragmenter
from repro.metadata.extensions import content_kind_for_extension
from repro.metadata.names import NameGenerator
from repro.namespace.generative_model import GenerativeTreeModel
from repro.namespace.placement import FilePlacer
from repro.namespace.special_dirs import install_special_directories
from repro.namespace.tree import FileSystemTree

__all__ = ["Impressions", "GenerationTimings"]


@dataclass
class GenerationTimings:
    """Per-phase wall-clock timings, in seconds (the Table 6 breakdown).

    ``extras`` holds named timings of optional phases that run after image
    generation — trace replay (``trace_replay``) and trace-driven aging
    (``trace_aging``) record themselves here — and is merged into
    :meth:`as_dict`, so Table 6 reporting picks the extra rows up without
    knowing about them in advance.
    """

    directory_structure: float = 0.0
    file_sizes: float = 0.0
    extensions: float = 0.0
    depth_and_placement: float = 0.0
    content: float = 0.0
    on_disk_creation: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.directory_structure
            + self.file_sizes
            + self.extensions
            + self.depth_and_placement
            + self.content
            + self.on_disk_creation
        )

    def as_dict(self) -> dict[str, float]:
        out = {
            "directory_structure": self.directory_structure,
            "file_sizes": self.file_sizes,
            "extensions": self.extensions,
            "depth_and_placement": self.depth_and_placement,
            "content": self.content,
            "on_disk_creation": self.on_disk_creation,
            "total": self.total,
        }
        out.update(self.extras)
        return out


class Impressions:
    """Generates file-system images from an :class:`ImpressionsConfig`."""

    def __init__(self, config: ImpressionsConfig | None = None) -> None:
        self._config = config or ImpressionsConfig()

    @property
    def config(self) -> ImpressionsConfig:
        return self._config

    def generate(self) -> FileSystemImage:
        """Run the full pipeline and return the generated image."""
        config = self._config
        rng = np.random.default_rng(config.seed)
        timings = GenerationTimings()
        report = ReproducibilityReport(seed=config.seed, parameters=config.parameter_table())
        report.distributions = self._distribution_report()

        # Phase 1: namespace.
        start = time.perf_counter()
        tree = self._build_namespace(rng)
        timings.directory_structure = time.perf_counter() - start

        # Phase 2: file sizes.
        start = time.perf_counter()
        sizes = self._sample_file_sizes(rng, report)
        timings.file_sizes = time.perf_counter() - start

        # Phase 3: extensions.
        start = time.perf_counter()
        extensions = config.extension_model.sample_extensions(rng, len(sizes))
        timings.extensions = time.perf_counter() - start

        # Phase 4: depth selection + parent placement + file creation.
        start = time.perf_counter()
        content_generator = ContentGenerator(policy=config.content) if config.generate_content else None
        self._populate_files(tree, sizes, extensions, rng, content_generator)
        timings.depth_and_placement = time.perf_counter() - start

        # Optional: file timestamps (age model).
        if config.timestamp_model is not None:
            now = config.timestamp_now if config.timestamp_now is not None else time.time()
            report.record_derived("timestamp_now", now)
            for file_node in tree.files:
                file_node.timestamps = config.timestamp_model.sample(rng, now)

        # Phase 5: content (recorded lazily; cost here is model construction +
        # a sample generation to surface configuration errors early).
        content_seed = int(rng.integers(0, 2**31 - 1))
        start = time.perf_counter()
        if content_generator is not None and tree.file_count:
            probe = tree.files[0]
            probe_rng = np.random.default_rng((content_seed, probe.file_id))
            content_generator.generate(min(probe.size, 4096), probe.extension, probe_rng)
        timings.content = time.perf_counter() - start

        # Phase 6: on-disk creation with the requested layout score.
        start = time.perf_counter()
        disk = self._create_on_disk(tree, rng)
        timings.on_disk_creation = time.perf_counter() - start

        report.record_timing("directory_structure", timings.directory_structure)
        report.record_timing("file_sizes", timings.file_sizes)
        report.record_timing("extensions", timings.extensions)
        report.record_timing("depth_and_placement", timings.depth_and_placement)
        report.record_timing("content", timings.content)
        report.record_timing("on_disk_creation", timings.on_disk_creation)
        report.record_timing("total", timings.total)
        report.record_derived("file_count", tree.file_count)
        report.record_derived("directory_count", tree.directory_count)
        report.record_derived("total_bytes", tree.total_bytes)

        image = FileSystemImage(
            tree=tree,
            disk=disk,
            content_generator=content_generator,
            content_seed=content_seed,
            report=report,
        )
        report.record_derived("layout_score", image.achieved_layout_score())
        image.extras["timings"] = timings
        return image

    # Pipeline phases ------------------------------------------------------------

    def _build_namespace(self, rng: np.random.Generator) -> FileSystemTree:
        config = self._config
        model = GenerativeTreeModel(attachment_offset=config.attachment_offset)
        tree = model.generate(config.resolved_num_directories(), rng)
        if config.special_directories:
            install_special_directories(tree, tuple(config.special_directories), rng)
        return tree

    def _sample_file_sizes(self, rng: np.random.Generator, report: ReproducibilityReport) -> np.ndarray:
        config = self._config
        num_files = config.resolved_num_files()
        size_model = config.resolved_size_model()

        if config.enforce_fs_size and config.fs_size_bytes is not None:
            spec = ConstraintSpec(
                num_values=num_files,
                target_sum=float(config.fs_size_bytes),
                distribution=size_model,
                beta=config.beta,
                max_oversampling_factor=config.max_oversampling_factor,
            )
            result = ConstraintResolver(spec, rng).resolve()
            report.record_derived("constraint_final_beta", result.final_beta)
            report.record_derived("constraint_oversampling", result.oversampling_factor)
            report.record_derived("constraint_converged", result.converged)
            sizes = result.values
        else:
            sizes = np.asarray(size_model.sample(rng, num_files), dtype=float)
        return np.maximum(np.round(sizes), 0).astype(np.int64)

    def _populate_files(
        self,
        tree: FileSystemTree,
        sizes: np.ndarray,
        extensions: list[str],
        rng: np.random.Generator,
        content_generator: ContentGenerator | None,
    ) -> None:
        config = self._config
        special_nodes = {
            directory.special_label: directory
            for directory in tree.directories
            if directory.special_label is not None
        }
        placer = FilePlacer(
            tree=tree,
            model=config.placement_model(),
            rng=rng,
            special_nodes=special_nodes,
        )
        names = NameGenerator()
        for size, extension in zip(sizes, extensions):
            parent = placer.place(int(size))
            kind = (
                content_generator.content_kind(extension)
                if content_generator is not None
                else content_kind_for_extension(extension)
            )
            tree.create_file(
                parent=parent,
                size=int(size),
                extension=extension,
                name=names.next_file_name(extension),
                content_kind=kind,
            )

    def _create_on_disk(self, tree: FileSystemTree, rng: np.random.Generator) -> SimulatedDisk:
        config = self._config
        # Size the disk for whichever is larger: the configured capacity or the
        # bytes actually sampled (a Pareto-tail file can exceed the nominal FS
        # size), with 30% slack for the fragmenter's temporary files.
        needed_blocks = int(tree.total_bytes * 1.3) // config.block_size + tree.file_count + 1024
        capacity_blocks = max(
            config.resolved_disk_capacity() // config.block_size, needed_blocks, 1024
        )
        disk = SimulatedDisk(num_blocks=capacity_blocks)
        fragmenter = Fragmenter(disk=disk, target_score=config.layout_score, rng=rng)
        for file_node in tree.files:
            blocks = fragmenter.allocate_regular_file(file_node.path(), file_node.size)
            file_node.block_list = blocks
            file_node.first_block = blocks[0] if blocks else None
        fragmenter.finish()
        return disk

    def _distribution_report(self) -> dict[str, dict[str, float]]:
        config = self._config
        return {
            "file_size_by_count": dict(config.resolved_size_model().params()),
            "file_size_by_bytes": dict(config.resolved_bytes_model().params()),
            "file_count_with_depth": dict(config.depth_distribution.params()),
            "directory_size_files": dict(config.directory_file_count_model.params()),
        }
