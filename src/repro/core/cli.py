"""Command-line interface.

"Ease of use: by providing a simple, yet powerful, command-line interface."
The CLI exposes the automated mode (just pass ``--size`` / ``--files``) and
the most common user-specified knobs; it prints the image summary and the
full reproducibility report, and can materialise the image to a directory.

Examples::

    impressions --files 2000 --dirs 400 --seed 7
    impressions --size-gb 4.55 --files 20000 --enforce-size --report out.json
    impressions --files 500 --content hybrid --materialize /tmp/image

Operation-trace workflows live under the ``trace`` subcommand
(:mod:`repro.trace.cli`)::

    impressions trace synth --kind zipf --ops 50000 --files 2000 | \\
        impressions trace replay --files 2000
    impressions trace age --layout-score 0.7 --files 2000

Scenario sweeps live under the ``campaign`` subcommand
(:mod:`repro.campaign.cli`)::

    impressions campaign run sweep.json --store results.jsonl --workers 4
    impressions campaign compare baseline.jsonl results.jsonl

Generation itself runs on the staged pipeline (:mod:`repro.pipeline`):
``--stages`` selects a stage subset, ``--cache-dir`` enables the
content-addressed stage cache, and the ``pipeline`` subcommand inspects the
stage graph::

    impressions --files 2000 --cache-dir ~/.cache/impressions   # resumes free
    impressions --files 2000 --stages directory_structure,file_sizes,extensions,depth_and_placement
    impressions pipeline inspect --files 2000 --seed 7

Image export through pluggable sinks (directory trees with parallel writes,
deterministic tar archives, JSONL manifests, digest-only verification) lives
under the ``materialize`` subcommand (:mod:`repro.materialize.cli`)::

    impressions materialize --files 2000 --sink dir --out /tmp/img --jobs 4
    impressions materialize --files 2000 --sink tar --out img.tar.gz --verify

Sharded generation — the same image, split across worker processes and merged
back digest-identically — lives under the ``shard`` subcommand
(:mod:`repro.shard.cli`)::

    impressions shard plan --files 52000 --shards 8 --out plan.json
    impressions shard generate --plan plan.json --jobs 4
    impressions shard verify --files 2000 --shards 4 --jobs 4

The long-running benchmark farm — a durable job queue, worker fleet, and
HTTP control plane over the campaign machinery — lives under the
``service`` subcommand (:mod:`repro.service.cli`)::

    impressions service start --queue farm.sqlite --store results.jsonl --workers 4
    impressions service submit sweep.json --url http://127.0.0.1:8765 --wait
    impressions service status --url http://127.0.0.1:8765

The determinism / cache-soundness static analyzer (detlint) lives under the
``analyze`` subcommand (:mod:`repro.analysis.cli`)::

    impressions analyze src --baseline analysis-baseline.json
    impressions analyze --list-rules
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Sequence

from repro.content.generators import ContentPolicy
from repro.core.config import GIB, ImpressionsConfig

__all__ = ["main", "build_parser", "config_from_args", "add_config_arguments"]


def obs_use_scope(telemetry):
    """``obs.use(telemetry)`` or a no-op scope when telemetry is off."""
    if telemetry is None:
        return contextlib.nullcontext()
    from repro import obs

    return obs.use(telemetry)


def add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """Add the image-configuration flags shared with ``impressions pipeline``."""
    parser.add_argument("--size-gb", type=float, default=None, help="target file-system size in GiB")
    parser.add_argument("--size-bytes", type=int, default=None, help="target file-system size in bytes")
    parser.add_argument("--files", type=int, default=None, help="number of files")
    parser.add_argument("--dirs", type=int, default=None, help="number of directories")
    parser.add_argument("--seed", type=int, default=42, help="random seed (reported for reproducibility)")
    parser.add_argument(
        "--enforce-size",
        action="store_true",
        help="resolve file sizes against the target size with the constraint resolver",
    )
    parser.add_argument("--beta", type=float, default=0.05, help="allowed relative error on the total size")
    parser.add_argument(
        "--layout-score", type=float, default=1.0, help="target on-disk layout score in (0, 1]"
    )
    parser.add_argument(
        "--content",
        choices=["none", "single-word", "word-popularity", "word-length", "hybrid"],
        default="none",
        help="file-content model (default: metadata only)",
    )
    parser.add_argument(
        "--simple-size-model",
        action="store_true",
        help="use the plain lognormal size model instead of the hybrid lognormal+Pareto",
    )
    parser.add_argument(
        "--no-special-dirs", action="store_true", help="disable special-directory biases"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions",
        description="Generate statistically accurate file-system images (FAST '09 reproduction).",
        epilog=(
            "Operation traces: 'impressions trace synth|replay|age --help'. "
            "Scenario sweeps: 'impressions campaign run|list|report|compare --help'. "
            "Stage graph: 'impressions pipeline inspect --help'. "
            "Sinks and archives: 'impressions materialize --help'. "
            "Sharded generation: 'impressions shard plan|generate|verify --help'. "
            "Chaos sweeps: 'impressions faults plan|sweep --help'."
        ),
    )
    add_config_arguments(parser)
    parser.add_argument(
        "--stages",
        metavar="LIST",
        default=None,
        help=(
            "comma-separated subset of generation stages to run "
            "(e.g. 'directory_structure,file_sizes,extensions,depth_and_placement' "
            "for an image without disk layout)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help=(
            "content-addressed stage cache: re-runs with the same config resume "
            "from the deepest cached stage instead of regenerating"
        ),
    )
    parser.add_argument(
        "--materialize", metavar="PATH", default=None, help="write the image to this directory"
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None, help="write the reproducibility report (JSON) here"
    )
    parser.add_argument("--quiet", action="store_true", help="only print the summary line")
    parser.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON summary instead of the text report",
    )
    parser.add_argument(
        "--obs-dir",
        metavar="PATH",
        default=None,
        help=(
            "observe the run and write telemetry artifacts here: JSONL event "
            "log, Chrome trace, Prometheus snapshot, text summary "
            "(inspect with 'impressions obs summarize|export')"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ImpressionsConfig:
    """Translate parsed CLI arguments into an :class:`ImpressionsConfig`."""
    fs_size_bytes: int | None
    if args.size_bytes is not None:
        fs_size_bytes = args.size_bytes
    elif args.size_gb is not None:
        fs_size_bytes = int(args.size_gb * GIB)
    else:
        fs_size_bytes = None

    if fs_size_bytes is None and args.files is None:
        # Automated mode with no input at all: fall back to the paper default.
        fs_size_bytes = ImpressionsConfig().fs_size_bytes

    generate_content = args.content != "none"
    content_policy = ContentPolicy(text_model=args.content if generate_content else "hybrid")

    return ImpressionsConfig(
        fs_size_bytes=fs_size_bytes,
        num_files=args.files,
        num_directories=args.dirs,
        seed=args.seed,
        enforce_fs_size=args.enforce_size,
        beta=args.beta,
        layout_score=args.layout_score,
        generate_content=generate_content,
        content=content_policy,
        use_simple_size_model=args.simple_size_model,
        special_directories=() if args.no_special_dirs else ImpressionsConfig().special_directories,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``impressions`` console script."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # Trace subcommands have their own parser; the image-generation flags
        # below stay available positional-free for backward compatibility.
        from repro.trace.cli import main as trace_main

        return trace_main(list(argv[1:]))
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(list(argv[1:]))
    if argv and argv[0] == "pipeline":
        from repro.pipeline.cli import main as pipeline_main

        return pipeline_main(list(argv[1:]))
    if argv and argv[0] == "materialize":
        from repro.materialize.cli import main as materialize_main

        return materialize_main(list(argv[1:]))
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(list(argv[1:]))
    if argv and argv[0] == "shard":
        from repro.shard.cli import main as shard_main

        return shard_main(list(argv[1:]))
    if argv and argv[0] == "service":
        from repro.service.cli import main as service_main

        return service_main(list(argv[1:]))
    if argv and argv[0] == "faults":
        from repro.faults.cli import main as faults_main

        return faults_main(list(argv[1:]))
    if argv and argv[0] == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit

    from repro.pipeline import StageCache, StageWiringError, default_pipeline

    pipeline = default_pipeline()
    if args.stages:
        names = [name.strip() for name in args.stages.split(",") if name.strip()]
        try:
            pipeline = pipeline.subset(names)
        except StageWiringError as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises SystemExit
    cache = StageCache(args.cache_dir) if args.cache_dir else None

    telemetry = None
    if args.obs_dir:
        from repro import obs

        telemetry = obs.Telemetry(run_id=f"generate-{config.fingerprint()[:12]}")
    scope = obs_use_scope(telemetry)
    with scope:
        result = pipeline.run(config, cache=cache)
        image = result.image
        summary = image.summary()

        written: int | None = None
        if args.materialize:
            written = image.materialize(args.materialize)

    obs_paths: dict[str, str] | None = None
    if telemetry is not None:
        from repro import obs

        if image.report is not None:
            image.report.record_telemetry(obs.summary_dict(telemetry))
        obs_paths = obs.save(telemetry, args.obs_dir)

    if args.json:
        # Machine-readable mode: one JSON document on stdout, nothing else —
        # campaign workers and scripts consume this instead of scraping the
        # human-formatted report.
        payload: dict = {
            "summary": summary,
            "knobs": config.to_knobs(),
            # Config-only identity; campaign scenario fingerprints build on
            # this plus the scenario's step list.
            "config_fingerprint": config.fingerprint(),
            # Per-stage fingerprints, seconds and cache outcome.
            "pipeline": result.as_dict(),
        }
        if image.report is not None:
            payload["report"] = image.report.to_dict()
        if written is not None:
            payload["materialized"] = {"path": args.materialize, "files": written}
        if obs_paths is not None:
            payload["obs"] = {"dir": args.obs_dir, "artifacts": obs_paths}
        print(json.dumps(payload, sort_keys=True, default=str))
        if args.report and image.report is not None:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(image.report.to_json())
        return 0

    print(
        "generated image: "
        f"{summary['files']} files, {summary['directories']} directories, "
        f"{summary['total_bytes']} bytes, layout score {summary['layout_score']:.3f}"
    )
    if cache is not None:
        stats = result.cache_summary()
        print(
            f"stage cache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
            f"{stats['stores']} store(s) in {args.cache_dir}"
        )

    if not args.quiet and image.report is not None:
        print()
        print(image.report.render_text())

    if args.report and image.report is not None:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(image.report.to_json())
        print(f"reproducibility report written to {args.report}")

    if written is not None:
        print(f"materialized {written} files under {args.materialize}")

    if obs_paths is not None:
        print(f"telemetry written to {args.obs_dir} ({', '.join(sorted(obs_paths))})")

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
