"""The generated file-system image.

A :class:`FileSystemImage` bundles everything the generation pipeline
produced: the namespace tree, the simulated disk with its block layout, the
content policy, per-phase timings and the reproducibility report.  It can

* report summary statistics (Figure 2 / Table 3 compare these against the
  desired distributions),
* look up file content lazily (content bytes are generated on demand from the
  per-file seed so the in-memory image stays small), and
* **materialise** itself into a real directory tree on a host file system for
  use with external tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.content.generators import ContentGenerator
from repro.layout.disk import SimulatedDisk
from repro.layout.layout_score import layout_score
from repro.namespace.tree import FileNode, FileSystemTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.report import ReproducibilityReport

__all__ = ["FileSystemImage"]


@dataclass
class FileSystemImage:
    """A fully generated file-system image.

    Attributes:
        tree: the namespace with all file metadata.
        disk: the simulated disk holding the block layout (None when layout
            was skipped).
        content_generator: generator able to reproduce each file's bytes.
        content_seed: base seed for per-file content generation.
        report: the reproducibility report for this image.
    """

    tree: FileSystemTree
    disk: SimulatedDisk | None = None
    content_generator: ContentGenerator | None = None
    content_seed: int = 0
    report: "ReproducibilityReport | None" = None
    extras: dict = field(default_factory=dict)

    # Statistics ---------------------------------------------------------------

    @property
    def file_count(self) -> int:
        return self.tree.file_count

    @property
    def directory_count(self) -> int:
        return self.tree.directory_count

    @property
    def total_bytes(self) -> int:
        return self.tree.total_bytes

    def achieved_layout_score(self) -> float:
        """Layout score of the on-disk layout (1.0 when layout was skipped).

        When the disk holds exactly the tree's files — the steady state after
        generation — the score is an O(1) read of the disk's maintained
        layout aggregates; otherwise it is summed from the per-file extent
        caches, O(files), never expanding a block list.
        """
        if self.disk is None:
            return 1.0
        names = [self._disk_name(file) for file in self.tree.files]
        present = [name for name in names if self.disk.has_file(name)]
        if not present:
            return 1.0
        if len(present) == self.disk.num_files:
            # Paths are unique, so covering every allocation means the subset
            # is the whole disk: use the O(1) aggregate score.
            return self.disk.layout_score()
        return layout_score(self.disk, present)

    def summary(self) -> dict:
        """Summary statistics of the image."""
        stats = self.tree.summary()
        stats["layout_score"] = self.achieved_layout_score()
        stats["content"] = (
            self.content_generator.policy.text_model if self.content_generator else "metadata only"
        )
        return stats

    # Content ------------------------------------------------------------------

    def file_content(self, file_node: FileNode) -> bytes:
        """(Re)generate the content bytes of one file.

        Content is a pure function of the image's content seed and the file's
        index, so repeated calls return identical bytes and materialisation
        matches what any in-memory consumer saw.  Files adopted from another
        image (shard merge) carry the ``(seed, id)`` pair they were generated
        under in :attr:`~repro.namespace.tree.FileNode.content_key`, which
        takes precedence — their bytes survive the merge's re-numbering.
        """
        if self.content_generator is None:
            raise RuntimeError("this image was generated without content")
        key = file_node.content_key
        if key is None:
            key = (self.content_seed, self._file_index(file_node))
        rng = np.random.default_rng(key)
        return self.content_generator.generate(file_node.size, file_node.extension, rng)

    def iter_file_contents(self) -> Iterator[tuple[FileNode, bytes]]:
        """Iterate over (file, content) pairs for every file in the image."""
        for file_node in self.tree.files:
            yield file_node, self.file_content(file_node)

    # Materialisation ------------------------------------------------------------

    def materialize(
        self,
        root_path: str,
        write_content: bool | None = None,
        jobs: int = 1,
        order: str = "namespace",
    ) -> int:
        """Write the image to ``root_path`` on the host file system.

        Thin facade over :class:`repro.materialize.DirectorySink`: creates
        every directory and file (content when ``write_content`` is True,
        sparse files of the right apparent size otherwise), applies file and
        derived directory timestamps, and returns the number of files
        written.  ``jobs`` parallelizes content generation + writes across
        worker processes; ``order`` picks the streaming order (``namespace``
        or disk-``extent``).  The serial namespace-order output is
        byte-identical to the historical monolithic implementation.

        For archives, manifests, digest-only runs, phase timings and
        round-trip verification use :func:`repro.materialize.materialize_image`
        directly.
        """
        from repro.materialize import DirectorySink, MaterializeError, materialize_image

        try:
            result = materialize_image(
                self,
                DirectorySink(root_path, jobs=jobs),
                order=order,
                write_content=write_content,
            )
        except MaterializeError as error:
            raise RuntimeError(str(error)) from error
        return result.files

    # Internal helpers -------------------------------------------------------------

    def _file_index(self, file_node: FileNode) -> int:
        if file_node.file_id < 0:
            raise ValueError("file does not belong to a generated image")
        return file_node.file_id

    def _disk_name(self, file_node: FileNode) -> str:
        return file_node.path()
