"""The generated file-system image.

A :class:`FileSystemImage` bundles everything the generation pipeline
produced: the namespace tree, the simulated disk with its block layout, the
content policy, per-phase timings and the reproducibility report.  It can

* report summary statistics (Figure 2 / Table 3 compare these against the
  desired distributions),
* look up file content lazily (content bytes are generated on demand from the
  per-file seed so the in-memory image stays small), and
* **materialise** itself into a real directory tree on a host file system for
  use with external tools.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.content.generators import ContentGenerator
from repro.layout.disk import SimulatedDisk
from repro.layout.layout_score import layout_score
from repro.namespace.tree import FileNode, FileSystemTree

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.report import ReproducibilityReport

__all__ = ["FileSystemImage"]


@dataclass
class FileSystemImage:
    """A fully generated file-system image.

    Attributes:
        tree: the namespace with all file metadata.
        disk: the simulated disk holding the block layout (None when layout
            was skipped).
        content_generator: generator able to reproduce each file's bytes.
        content_seed: base seed for per-file content generation.
        report: the reproducibility report for this image.
    """

    tree: FileSystemTree
    disk: SimulatedDisk | None = None
    content_generator: ContentGenerator | None = None
    content_seed: int = 0
    report: "ReproducibilityReport | None" = None
    extras: dict = field(default_factory=dict)

    # Statistics ---------------------------------------------------------------

    @property
    def file_count(self) -> int:
        return self.tree.file_count

    @property
    def directory_count(self) -> int:
        return self.tree.directory_count

    @property
    def total_bytes(self) -> int:
        return self.tree.total_bytes

    def achieved_layout_score(self) -> float:
        """Layout score of the on-disk layout (1.0 when layout was skipped).

        When the disk holds exactly the tree's files — the steady state after
        generation — the score is an O(1) read of the disk's maintained
        layout aggregates; otherwise it is summed from the per-file extent
        caches, O(files), never expanding a block list.
        """
        if self.disk is None:
            return 1.0
        names = [self._disk_name(file) for file in self.tree.files]
        present = [name for name in names if self.disk.has_file(name)]
        if not present:
            return 1.0
        if len(present) == self.disk.num_files:
            # Paths are unique, so covering every allocation means the subset
            # is the whole disk: use the O(1) aggregate score.
            return self.disk.layout_score()
        return layout_score(self.disk, present)

    def summary(self) -> dict:
        """Summary statistics of the image."""
        stats = self.tree.summary()
        stats["layout_score"] = self.achieved_layout_score()
        stats["content"] = (
            self.content_generator.policy.text_model if self.content_generator else "metadata only"
        )
        return stats

    # Content ------------------------------------------------------------------

    def file_content(self, file_node: FileNode) -> bytes:
        """(Re)generate the content bytes of one file.

        Content is a pure function of the image's content seed and the file's
        index, so repeated calls return identical bytes and materialisation
        matches what any in-memory consumer saw.
        """
        if self.content_generator is None:
            raise RuntimeError("this image was generated without content")
        rng = np.random.default_rng((self.content_seed, self._file_index(file_node)))
        return self.content_generator.generate(file_node.size, file_node.extension, rng)

    def iter_file_contents(self) -> Iterator[tuple[FileNode, bytes]]:
        """Iterate over (file, content) pairs for every file in the image."""
        for file_node in self.tree.files:
            yield file_node, self.file_content(file_node)

    # Materialisation ------------------------------------------------------------

    def materialize(self, root_path: str, write_content: bool | None = None) -> int:
        """Write the image to ``root_path`` on the host file system.

        Creates every directory and file; file contents are written when
        ``write_content`` is True (default: only if the image has a content
        generator).  Returns the number of files written.  Materialisation is
        intended for modest images (tests, examples); the in-memory image plus
        the simulated disk is the primary artefact for experiments.
        """
        if write_content is None:
            write_content = self.content_generator is not None
        if write_content and self.content_generator is None:
            raise RuntimeError("cannot write content: image has no content generator")

        os.makedirs(root_path, exist_ok=True)
        for directory in self.tree.walk_depth_first():
            path = os.path.join(root_path, directory.path().lstrip("/"))
            os.makedirs(path, exist_ok=True)

        written = 0
        for file_node in self.tree.files:
            path = os.path.join(root_path, file_node.path().lstrip("/"))
            if write_content:
                rng = np.random.default_rng((self.content_seed, self._file_index(file_node)))
                assert self.content_generator is not None
                with open(path, "wb") as handle:
                    for chunk in self.content_generator.iter_chunks(
                        file_node.size, file_node.extension, rng
                    ):
                        handle.write(chunk)
            else:
                # Metadata-only materialisation: create sparse files of the
                # right size so directory structure and sizes are faithful.
                with open(path, "wb") as handle:
                    if file_node.size:
                        handle.seek(file_node.size - 1)
                        handle.write(b"\0")
            if file_node.timestamps is not None:
                os.utime(path, (file_node.timestamps.accessed, file_node.timestamps.modified))
            written += 1
        return written

    # Internal helpers -------------------------------------------------------------

    def _file_index(self, file_node: FileNode) -> int:
        if file_node.file_id < 0:
            raise ValueError("file does not belong to a generated image")
        return file_node.file_id

    def _disk_name(self, file_node: FileNode) -> str:
        return file_node.path()
