"""The Impressions framework proper.

* :mod:`repro.core.config` — :class:`ImpressionsConfig`, the complete set of
  user-controllable parameters with the Table 2 defaults.
* :mod:`repro.core.impressions` — the generation pipeline (namespace, files,
  content, layout) and its per-phase timing.
* :mod:`repro.core.image` — the generated :class:`FileSystemImage`, its
  statistics and its materialisation to a real directory tree on disk.
* :mod:`repro.core.report` — the reproducibility report (distributions,
  parameter values, random seeds).
* :mod:`repro.core.cli` — the command-line interface.
"""

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import GenerationTimings, Impressions
from repro.core.report import ReproducibilityReport

__all__ = [
    "ImpressionsConfig",
    "Impressions",
    "FileSystemImage",
    "GenerationTimings",
    "ReproducibilityReport",
]
