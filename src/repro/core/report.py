"""Reproducibility reporting (Section 3.1 / Section 4.2).

"In both cases, Impressions ensures complete reproducibility of the
file-system image by reporting the used distributions, their parameter values,
and seeds for random number generators."  A :class:`ReproducibilityReport`
captures exactly that, can be rendered as text or a plain dictionary, and can
be fed back into a fresh :class:`~repro.core.config.ImpressionsConfig` (via
the recorded parameters and seed) to regenerate the identical image.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ReproducibilityReport"]


@dataclass
class ReproducibilityReport:
    """Everything needed to regenerate an image bit-for-bit.

    Attributes:
        seed: master random seed.
        parameters: the resolved parameter table (Table 2 view).
        distributions: per-parameter distribution descriptions with concrete
            parameter values.
        derived: values Impressions derived during generation (actual file
            count, total bytes, achieved layout score, …).
        phase_timings: seconds spent per generation phase (Table 6 rows).
        traces: per-trace replay statistics recorded against this image
            (op counts, simulated latencies, cache behaviour).
        telemetry: the run's :mod:`repro.obs` summary (span totals and metric
            series), when the run was observed.
    """

    seed: int
    parameters: Mapping[str, str] = field(default_factory=dict)
    distributions: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    derived: dict = field(default_factory=dict)
    phase_timings: dict = field(default_factory=dict)
    traces: dict = field(default_factory=dict)
    telemetry: dict = field(default_factory=dict)

    def record_derived(self, key: str, value) -> None:
        self.derived[key] = value

    def record_timing(self, phase: str, seconds: float) -> None:
        self.phase_timings[phase] = float(seconds)

    def record_trace(self, name: str, stats: Mapping) -> None:
        """Attach the replay statistics of one trace run to the report."""
        self.traces[name] = dict(stats)

    def record_telemetry(self, summary: Mapping) -> None:
        """Attach (or replace) the run's telemetry summary.

        ``summary`` is the :func:`repro.obs.summary_dict` view — JSON-safe,
        so the report still serialises cleanly.  Each call replaces the whole
        section: callers fold the summary in once the run is complete.
        """
        self.telemetry = dict(summary)

    def to_dict(self) -> dict:
        out = {
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "distributions": {name: dict(params) for name, params in self.distributions.items()},
            "derived": dict(self.derived),
            "phase_timings": dict(self.phase_timings),
        }
        if self.traces:
            out["traces"] = {name: dict(stats) for name, stats in self.traces.items()}
        if self.telemetry:
            out["telemetry"] = dict(self.telemetry)
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def render_text(self) -> str:
        """Multi-line human readable report, suitable for the CLI and papers."""
        lines = ["Impressions reproducibility report", "=" * 36, f"seed: {self.seed}", ""]
        lines.append("Parameters:")
        for key, value in self.parameters.items():
            lines.append(f"  {key}: {value}")
        if self.distributions:
            lines.append("")
            lines.append("Distributions:")
            for name, params in self.distributions.items():
                rendered = ", ".join(f"{k}={v:.6g}" for k, v in params.items())
                lines.append(f"  {name}: {rendered}")
        if self.derived:
            lines.append("")
            lines.append("Derived values:")
            for key, value in self.derived.items():
                lines.append(f"  {key}: {value}")
        if self.phase_timings:
            lines.append("")
            lines.append("Phase timings (seconds):")
            for phase, seconds in self.phase_timings.items():
                lines.append(f"  {phase}: {seconds:.3f}")
        if self.traces:
            lines.append("")
            lines.append("Trace replays:")
            for name, stats in self.traces.items():
                operations = stats.get("operations", "?")
                simulated = stats.get("simulated_ms", 0.0)
                lines.append(f"  {name}: {operations} ops, {simulated:.1f} simulated ms")
        if self.telemetry:
            lines.append("")
            lines.append("Telemetry:")
            spans = self.telemetry.get("spans", {})
            for name, stats in spans.items():
                count = stats.get("count", 0)
                wall = stats.get("wall_seconds", 0.0)
                errors = stats.get("errors", 0)
                suffix = f", {errors} error(s)" if errors else ""
                lines.append(f"  span {name}: {count}x, {wall:.3f}s wall{suffix}")
            metrics = self.telemetry.get("metrics", {})
            for name, info in metrics.items():
                for label_key, value in info.get("series", {}).items():
                    label_part = "" if label_key == "{}" else label_key
                    if info.get("kind") == "histogram":
                        rendered = (
                            f"count={value.get('count', 0)} "
                            f"mean={value.get('mean', 0.0):.4g} "
                            f"p95={value.get('p95', 0.0):.4g}"
                        )
                    else:
                        rendered = f"{value}"
                    lines.append(f"  {name}{label_part}: {rendered}")
        return "\n".join(lines)
