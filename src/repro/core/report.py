"""Reproducibility reporting (Section 3.1 / Section 4.2).

"In both cases, Impressions ensures complete reproducibility of the
file-system image by reporting the used distributions, their parameter values,
and seeds for random number generators."  A :class:`ReproducibilityReport`
captures exactly that, can be rendered as text or a plain dictionary, and can
be fed back into a fresh :class:`~repro.core.config.ImpressionsConfig` (via
the recorded parameters and seed) to regenerate the identical image.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["ReproducibilityReport"]


@dataclass
class ReproducibilityReport:
    """Everything needed to regenerate an image bit-for-bit.

    Attributes:
        seed: master random seed.
        parameters: the resolved parameter table (Table 2 view).
        distributions: per-parameter distribution descriptions with concrete
            parameter values.
        derived: values Impressions derived during generation (actual file
            count, total bytes, achieved layout score, …).
        phase_timings: seconds spent per generation phase (Table 6 rows).
        traces: per-trace replay statistics recorded against this image
            (op counts, simulated latencies, cache behaviour).
    """

    seed: int
    parameters: Mapping[str, str] = field(default_factory=dict)
    distributions: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    derived: dict = field(default_factory=dict)
    phase_timings: dict = field(default_factory=dict)
    traces: dict = field(default_factory=dict)

    def record_derived(self, key: str, value) -> None:
        self.derived[key] = value

    def record_timing(self, phase: str, seconds: float) -> None:
        self.phase_timings[phase] = float(seconds)

    def record_trace(self, name: str, stats: Mapping) -> None:
        """Attach the replay statistics of one trace run to the report."""
        self.traces[name] = dict(stats)

    def to_dict(self) -> dict:
        out = {
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "distributions": {name: dict(params) for name, params in self.distributions.items()},
            "derived": dict(self.derived),
            "phase_timings": dict(self.phase_timings),
        }
        if self.traces:
            out["traces"] = {name: dict(stats) for name, stats in self.traces.items()}
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def render_text(self) -> str:
        """Multi-line human readable report, suitable for the CLI and papers."""
        lines = ["Impressions reproducibility report", "=" * 36, f"seed: {self.seed}", ""]
        lines.append("Parameters:")
        for key, value in self.parameters.items():
            lines.append(f"  {key}: {value}")
        if self.distributions:
            lines.append("")
            lines.append("Distributions:")
            for name, params in self.distributions.items():
                rendered = ", ".join(f"{k}={v:.6g}" for k, v in params.items())
                lines.append(f"  {name}: {rendered}")
        if self.derived:
            lines.append("")
            lines.append("Derived values:")
            for key, value in self.derived.items():
                lines.append(f"  {key}: {value}")
        if self.phase_timings:
            lines.append("")
            lines.append("Phase timings (seconds):")
            for phase, seconds in self.phase_timings.items():
                lines.append(f"  {phase}: {seconds:.3f}")
        if self.traces:
            lines.append("")
            lines.append("Trace replays:")
            for name, stats in self.traces.items():
                operations = stats.get("operations", "?")
                simulated = stats.get("simulated_ms", 0.0)
                lines.append(f"  {name}: {operations} ops, {simulated:.1f} simulated ms")
        return "\n".join(lines)
