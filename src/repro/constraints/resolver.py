"""Multi-constraint resolution (Section 3.4).

The resolver draws an initial sample of ``N`` file sizes from the requested
distribution, then repeatedly **oversamples** one extra value at a time and
searches (via the fixed-cardinality subset-sum approximation) for an exactly
``N``-element subset whose sum is within ``β·S`` of the desired file-system
size ``S``.  A two-sample Kolmogorov-Smirnov test at 0.05 significance gates
acceptance so the constrained sample still follows the original distribution.
If the oversampling factor ``α/N`` exceeds ``λ`` without success, the current
sample set is discarded and the procedure restarts (the paper's behaviour for
the hard 90 K case).

The per-oversample traces (:class:`ConvergenceTrace`) feed Figure 3(a); the
aggregate statistics of :class:`ResolutionResult` feed Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constraints.subset_sum import solve_fixed_size_subset_sum
from repro.stats.distributions import Distribution
from repro.stats.goodness_of_fit import ks_test_two_sample

__all__ = [
    "ConstraintSpec",
    "ConvergenceTrace",
    "ResolutionResult",
    "ConstraintResolutionError",
    "ConstraintResolver",
]


class ConstraintResolutionError(RuntimeError):
    """Raised when the resolver cannot satisfy the constraints within budget."""


@dataclass(frozen=True)
class ConstraintSpec:
    """A multi-constraint problem instance.

    Attributes:
        num_values: ``N`` — the exact number of values (files) required.
        target_sum: ``S`` — the required sum of the values (file-system used
            space in bytes).
        distribution: ``D3`` — the distribution the values must follow.
        beta: maximum relative error allowed between the achieved and desired
            sums (the paper uses 0.05).
        max_oversampling_factor: ``λ`` — maximum allowed ``α/N`` before the
            sample set is discarded and the resolver starts over.
        significance: significance level of the K-S acceptance test.
        max_restarts: how many times the resolver may start over before giving
            up entirely.
    """

    num_values: int
    target_sum: float
    distribution: Distribution
    beta: float = 0.05
    max_oversampling_factor: float = 1.0
    significance: float = 0.05
    max_restarts: int = 10

    def __post_init__(self) -> None:
        if self.num_values <= 0:
            raise ValueError("num_values must be positive")
        if self.target_sum <= 0:
            raise ValueError("target_sum must be positive")
        if not 0.0 < self.beta < 1.0:
            raise ValueError("beta must lie in (0, 1)")
        if self.max_oversampling_factor <= 0:
            raise ValueError("max_oversampling_factor must be positive")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be at least 1")


@dataclass
class ConvergenceTrace:
    """Per-trial record of how the achieved sum converged (Figure 3(a)).

    ``sums[i]`` is the best achieved subset sum after ``i`` oversamples; the
    initial sample's sum is ``sums[0]``.
    """

    sums: list[float] = field(default_factory=list)
    oversamples: int = 0
    restarts: int = 0

    def record(self, achieved_sum: float) -> None:
        self.sums.append(float(achieved_sum))


@dataclass
class ResolutionResult:
    """Outcome of resolving one constraint problem.

    Attributes:
        values: the final ``N`` values satisfying the constraints.
        initial_beta: relative sum error of the very first (pre-resolution)
            sample — the "Avg. β Initial" column of Table 4.
        final_beta: relative sum error of the accepted subset.
        oversampling_factor: ``α/N`` for the accepted subset (Table 4's
            "Avg. α").
        ks_statistic_vs_initial: two-sample K-S ``D`` between the accepted
            subset and a fresh reference sample from the distribution.
        ks_passed: whether the K-S acceptance test passed.
        converged: whether the sum constraint was met within budget.
        trace: the convergence trace (for Figure 3(a)).
    """

    values: np.ndarray
    initial_beta: float
    final_beta: float
    oversampling_factor: float
    ks_statistic_vs_initial: float
    ks_passed: bool
    converged: bool
    trace: ConvergenceTrace


class ConstraintResolver:
    """Resolves a :class:`ConstraintSpec` into a concrete sample of values."""

    def __init__(self, spec: ConstraintSpec, rng: np.random.Generator) -> None:
        self._spec = spec
        self._rng = rng

    @property
    def spec(self) -> ConstraintSpec:
        return self._spec

    def resolve(self, raise_on_failure: bool = False) -> ResolutionResult:
        """Run the oversampling loop until the constraints are satisfied.

        Args:
            raise_on_failure: raise :class:`ConstraintResolutionError` instead
                of returning a non-converged result when every restart fails.
        """
        spec = self._spec
        trace = ConvergenceTrace()
        initial_beta: float | None = None
        best_result: ResolutionResult | None = None

        for restart in range(spec.max_restarts):
            trace.restarts = restart
            outcome = self._attempt(trace, record_initial_beta=initial_beta is None)
            if outcome.initial_beta_observed is not None and initial_beta is None:
                initial_beta = outcome.initial_beta_observed
            result = self._finalise(outcome, initial_beta or 0.0, trace)
            if best_result is None or result.final_beta < best_result.final_beta:
                best_result = result
            if result.converged and result.ks_passed:
                return result

        assert best_result is not None
        if raise_on_failure:
            raise ConstraintResolutionError(
                f"failed to satisfy constraints after {spec.max_restarts} restarts "
                f"(best beta={best_result.final_beta:.4f})"
            )
        return best_result

    # Internal helpers -----------------------------------------------------

    @dataclass
    class _AttemptOutcome:
        values: np.ndarray
        final_beta: float
        oversamples: int
        converged: bool
        initial_beta_observed: float | None

    def _attempt(self, trace: ConvergenceTrace, record_initial_beta: bool) -> "_AttemptOutcome":
        spec = self._spec
        n = spec.num_values
        max_oversamples = max(1, int(np.ceil(spec.max_oversampling_factor * n)))

        pool = np.asarray(spec.distribution.sample(self._rng, n), dtype=float)
        initial_sum = float(pool.sum())
        initial_beta = abs(initial_sum - spec.target_sum) / spec.target_sum
        trace.record(initial_sum)

        best_values = pool.copy()
        best_beta = initial_beta
        oversamples = 0

        # Check whether the raw sample already satisfies the sum constraint.
        if initial_beta <= spec.beta:
            return self._AttemptOutcome(
                values=pool,
                final_beta=initial_beta,
                oversamples=0,
                converged=True,
                initial_beta_observed=initial_beta if record_initial_beta else None,
            )

        while oversamples < max_oversamples:
            extra = np.asarray(spec.distribution.sample(self._rng, 1), dtype=float)
            pool = np.concatenate([pool, extra])
            oversamples += 1
            trace.oversamples += 1

            solution = solve_fixed_size_subset_sum(
                values=pool,
                subset_size=n,
                target_sum=spec.target_sum,
                rng=self._rng,
            )
            trace.record(solution.achieved_sum)
            if solution.relative_error < best_beta:
                best_beta = solution.relative_error
                best_values = pool[solution.indices]
            if solution.relative_error <= spec.beta:
                return self._AttemptOutcome(
                    values=pool[solution.indices],
                    final_beta=solution.relative_error,
                    oversamples=oversamples,
                    converged=True,
                    initial_beta_observed=initial_beta if record_initial_beta else None,
                )

        return self._AttemptOutcome(
            values=best_values,
            final_beta=best_beta,
            oversamples=oversamples,
            converged=False,
            initial_beta_observed=initial_beta if record_initial_beta else None,
        )

    def _finalise(
        self, outcome: "_AttemptOutcome", initial_beta: float, trace: ConvergenceTrace
    ) -> ResolutionResult:
        spec = self._spec
        reference = np.asarray(
            spec.distribution.sample(self._rng, max(spec.num_values, 200)), dtype=float
        )
        ks = ks_test_two_sample(outcome.values, reference, significance=spec.significance)
        return ResolutionResult(
            values=np.asarray(outcome.values, dtype=float),
            initial_beta=initial_beta,
            final_beta=outcome.final_beta,
            oversampling_factor=outcome.oversamples / spec.num_values,
            ks_statistic_vs_initial=ks.statistic,
            ks_passed=ks.passed,
            converged=outcome.converged,
            trace=trace,
        )


def summarize_trials(results: Sequence[ResolutionResult], beta_threshold: float = 0.05) -> dict:
    """Aggregate many resolution trials into the Table 4 row format.

    Returns a dictionary with the averages the paper reports: initial β,
    final β, oversampling factor α, K-S D statistic, and success rate (a trial
    succeeds when its final β is within the threshold and the K-S test
    passed).
    """
    if not results:
        raise ValueError("summarize_trials needs at least one result")
    initial_betas = [result.initial_beta for result in results]
    final_betas = [result.final_beta for result in results]
    alphas = [result.oversampling_factor for result in results]
    ds = [result.ks_statistic_vs_initial for result in results]
    successes = [
        result.final_beta <= beta_threshold and result.ks_passed for result in results
    ]
    return {
        "avg_initial_beta": float(np.mean(initial_betas)),
        "avg_final_beta": float(np.mean(final_betas)),
        "avg_alpha": float(np.mean(alphas)),
        "avg_ks_d": float(np.mean(ds)),
        "success_rate": float(np.mean(successes)),
        "trials": len(results),
    }
