"""Fixed-cardinality Subset Sum approximation.

The paper's constraint resolver needs, given a pool ``F`` of ``N + α``
candidate file sizes, a subset ``F_sub`` of *exactly* ``N`` elements whose sum
is within ``β·S`` of the target ``S``.  Subset Sum is NP-complete; the paper
adapts an O(n log n) approximation algorithm (Przydatek) with two phases:

1. **Random maximal start** — pick a random permutation and greedily take
   elements while the running sum stays below the target; here the start is
   additionally forced to contain exactly ``N`` elements.
2. **Local improvement** — for each selected element, look for an unselected
   element that, when swapped in, reduces the gap to the target sum.

Because the subset size is fixed, "maximal" from the original algorithm is
replaced by "exactly N, preferring small elements when the sum would
overshoot"; the improvement phase swaps single elements (keeping cardinality
constant) using binary search over the sorted complement, which keeps the
whole routine O(n log n).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = ["SubsetSumSolution", "solve_fixed_size_subset_sum"]


@dataclass
class SubsetSumSolution:
    """Result of the fixed-size subset-sum search.

    Attributes:
        indices: indices (into the candidate pool) of the selected subset.
        achieved_sum: sum of the selected values.
        target_sum: the requested sum.
        relative_error: ``|achieved - target| / target``.
        swaps: number of improvement swaps performed.
    """

    indices: np.ndarray
    achieved_sum: float
    target_sum: float
    relative_error: float
    swaps: int

    @property
    def size(self) -> int:
        return int(self.indices.size)


def solve_fixed_size_subset_sum(
    values: np.ndarray,
    subset_size: int,
    target_sum: float,
    rng: np.random.Generator,
    max_improvement_passes: int = 3,
) -> SubsetSumSolution:
    """Select exactly ``subset_size`` elements of ``values`` summing close to ``target_sum``.

    Args:
        values: candidate pool (the ``N + α`` oversampled file sizes).
        subset_size: required cardinality ``N``.
        target_sum: desired sum ``S``.
        rng: random generator used for the randomised initial solution.
        max_improvement_passes: how many sweeps of local improvement to run;
            each sweep visits every selected element once.

    Returns:
        The best subset found.  The caller decides whether the relative error
        is acceptable (the resolver enforces β and the K-S gate).
    """
    pool = np.asarray(values, dtype=float)
    n = pool.size
    if subset_size <= 0:
        raise ValueError("subset_size must be positive")
    if subset_size > n:
        raise ValueError(f"subset_size {subset_size} exceeds pool size {n}")
    if target_sum <= 0:
        raise ValueError("target_sum must be positive")

    selected_mask = _initial_selection(pool, subset_size, target_sum, rng)
    swaps = 0
    for _ in range(max_improvement_passes):
        improved, selected_mask = _improvement_pass(pool, selected_mask, target_sum)
        swaps += improved
        if improved == 0:
            break

    indices = np.flatnonzero(selected_mask)
    achieved = float(pool[indices].sum())
    relative_error = abs(achieved - target_sum) / target_sum
    return SubsetSumSolution(
        indices=indices,
        achieved_sum=achieved,
        target_sum=target_sum,
        relative_error=relative_error,
        swaps=swaps,
    )


def _initial_selection(
    pool: np.ndarray, subset_size: int, target_sum: float, rng: np.random.Generator
) -> np.ndarray:
    """Phase 1: a random exactly-N selection whose sum tries to stay below S.

    Mirrors the paper's modification of the first phase: take a random
    permutation and accept elements while the sum stays below the target; once
    the quota can only be met by accepting regardless, fall back to the
    smallest remaining elements so the overshoot is as small as possible.
    """
    n = pool.size
    order = rng.permutation(n)
    selected: list[int] = []
    running = 0.0
    skipped: list[int] = []
    for index in order:
        if len(selected) == subset_size:
            break
        value = pool[index]
        if running + value <= target_sum:
            selected.append(int(index))
            running += value
        else:
            skipped.append(int(index))
    if len(selected) < subset_size:
        # Not enough "fitting" elements: top up with the smallest skipped ones.
        needed = subset_size - len(selected)
        skipped.sort(key=lambda idx: pool[idx])
        selected.extend(skipped[:needed])
    mask = np.zeros(n, dtype=bool)
    mask[np.asarray(selected, dtype=int)] = True
    return mask


def _improvement_pass(
    pool: np.ndarray, selected_mask: np.ndarray, target_sum: float
) -> tuple[int, np.ndarray]:
    """Phase 2: one sweep of single-element swaps that shrink |sum - target|.

    For each selected element ``x`` we binary-search the sorted complement for
    the value closest to ``x + (target - current_sum)``; if swapping it in
    strictly reduces the absolute gap, the swap is applied immediately.
    """
    mask = selected_mask.copy()
    selected_indices = list(np.flatnonzero(mask))
    complement_indices = list(np.flatnonzero(~mask))
    complement_indices.sort(key=lambda idx: pool[idx])
    complement_values = [float(pool[idx]) for idx in complement_indices]

    current_sum = float(pool[mask].sum())
    swaps = 0
    for position, sel_idx in enumerate(selected_indices):
        if not complement_indices:
            break
        gap = target_sum - current_sum
        if gap == 0:
            break
        desired_value = float(pool[sel_idx]) + gap
        candidate_pos = _closest_position(complement_values, desired_value)
        best_pos = None
        best_error = abs(gap)
        for probe in (candidate_pos - 1, candidate_pos, candidate_pos + 1):
            if 0 <= probe < len(complement_values):
                new_sum = current_sum - float(pool[sel_idx]) + complement_values[probe]
                error = abs(target_sum - new_sum)
                if error < best_error - 1e-12:
                    best_error = error
                    best_pos = probe
        if best_pos is None:
            continue
        swap_idx = complement_indices[best_pos]
        # Apply the swap.
        current_sum = current_sum - float(pool[sel_idx]) + float(pool[swap_idx])
        mask[sel_idx] = False
        mask[swap_idx] = True
        # Keep the complement sorted: remove the swapped-in value, insert the
        # swapped-out one.
        del complement_indices[best_pos]
        del complement_values[best_pos]
        insert_at = bisect.bisect_left(complement_values, float(pool[sel_idx]))
        complement_values.insert(insert_at, float(pool[sel_idx]))
        complement_indices.insert(insert_at, sel_idx)
        selected_indices[position] = swap_idx
        swaps += 1
    return swaps, mask


def _closest_position(sorted_values: list[float], target: float) -> int:
    """Index in ``sorted_values`` whose value is closest to ``target``."""
    position = bisect.bisect_left(sorted_values, target)
    if position <= 0:
        return 0
    if position >= len(sorted_values):
        return len(sorted_values) - 1
    before = sorted_values[position - 1]
    after = sorted_values[position]
    return position - 1 if target - before <= after - target else position
