"""Constraint resolution (Section 3.4 of the paper).

Users may pin several parameters at once — e.g. exactly ``N`` files whose
sizes are drawn from distribution ``D`` but must sum to the requested
file-system size ``S`` within a relative error ``β``.  Impressions resolves
these constraints by oversampling extra candidate values and selecting an
exactly-``N``-element subset whose sum is close to ``S``, then checking that
the selected subset still follows ``D`` with a two-sample K-S test.

* :mod:`repro.constraints.subset_sum` — the approximation algorithm for the
  fixed-cardinality Subset Sum variant (random maximal start + local
  improvement, after Przydatek).
* :mod:`repro.constraints.resolver` — the oversampling/convergence loop and
  its bookkeeping (β, α, λ, per-trial traces used by Figure 3 and Table 4).
"""

from repro.constraints.resolver import (
    ConstraintResolutionError,
    ConstraintResolver,
    ConstraintSpec,
    ResolutionResult,
)
from repro.constraints.subset_sum import SubsetSumSolution, solve_fixed_size_subset_sum

__all__ = [
    "ConstraintSpec",
    "ConstraintResolver",
    "ConstraintResolutionError",
    "ResolutionResult",
    "SubsetSumSolution",
    "solve_fixed_size_subset_sum",
]
