"""Telemetry emitters: JSONL event log, Chrome trace, Prometheus text, summary.

The append-only JSONL event log (:func:`write_events_jsonl`) is the canonical
artifact — :func:`read_events_jsonl` rebuilds a full
:class:`~repro.obs.core.Telemetry` from it, so the other formats can be
re-derived offline (``impressions obs export``):

* :func:`chrome_trace` — a ``trace_event`` JSON document with one complete
  (``"ph": "X"``) event per span, loadable in ``chrome://tracing`` and
  Perfetto; span labels (including ``cached=true`` pipeline-stage marks)
  land in each event's ``args``.
* :func:`prometheus_text` — a Prometheus text-exposition snapshot of every
  metric series (histograms as cumulative ``_bucket{le=...}`` plus ``_sum``
  and ``_count``).
* :func:`render_text` / :func:`summary_dict` — the human summary folded into
  the :class:`~repro.core.report.ReproducibilityReport` and printed by
  ``impressions obs summarize``.

:func:`save` writes all four artifacts into one ``--obs-dir`` directory;
:func:`compare_rows` turns a telemetry object into rows shaped like campaign
result rows so :func:`repro.campaign.report.compare` can diff two runs'
metric snapshots with the same tolerance/direction machinery it applies to
campaign metrics.
"""

from __future__ import annotations

import json
import math
import os
from typing import IO, Mapping

from repro.obs.core import Counter, Gauge, Histogram, Telemetry, TelemetryError

__all__ = [
    "EVENTS_FILENAME",
    "CHROME_TRACE_FILENAME",
    "PROMETHEUS_FILENAME",
    "SUMMARY_FILENAME",
    "write_events_jsonl",
    "read_events_jsonl",
    "chrome_trace",
    "prometheus_text",
    "summary_dict",
    "render_text",
    "save",
    "compare_rows",
    "resolve_events_path",
]

EVENTS_FILENAME = "events.jsonl"
CHROME_TRACE_FILENAME = "trace.json"
PROMETHEUS_FILENAME = "metrics.prom"
SUMMARY_FILENAME = "summary.txt"


# JSONL event log --------------------------------------------------------------


def write_events_jsonl(telemetry: Telemetry, target: str | IO[str]) -> int:
    """Write the canonical event log; returns the number of events written."""
    events = telemetry.to_events()

    def _write(handle: IO[str]) -> None:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True, separators=(",", ":")))
            handle.write("\n")

    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            _write(handle)
    else:
        _write(target)
    return len(events)


def resolve_events_path(path: str) -> str:
    """Accept either an obs directory or a direct event-log path."""
    if os.path.isdir(path):
        return os.path.join(path, EVENTS_FILENAME)
    return path


def read_events_jsonl(source: str | IO[str]) -> Telemetry:
    """Rebuild a telemetry object from a JSONL event log (path, dir, or handle)."""

    def _read(handle: IO[str]) -> Telemetry:
        events = []
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryError(f"line {number}: malformed event: {error}") from error
            if not isinstance(event, dict):
                raise TelemetryError(f"line {number}: event must be a JSON object")
            events.append(event)
        return Telemetry.from_events(events)

    if isinstance(source, str):
        with open(resolve_events_path(source), "r", encoding="utf-8") as handle:
            return _read(handle)
    return _read(source)


# Chrome trace_event -----------------------------------------------------------


def chrome_trace(telemetry: Telemetry) -> dict:
    """A ``chrome://tracing`` / Perfetto-loadable trace document.

    Spans become complete events (``ph: "X"``) with microsecond timestamps
    relative to the telemetry epoch; the recording process id keeps merged
    worker snapshots on separate tracks.  Counter/gauge final values are
    appended as Chrome counter (``ph: "C"``) samples so cache hit totals and
    throughput gauges show up alongside the span timeline.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": int(telemetry.meta.get("pid", 0)),
            "tid": 0,
            "args": {"name": f"impressions:{telemetry.meta.get('run_id') or 'run'}"},
        }
    ]
    last_ts: dict[int, float] = {}
    for span in sorted(telemetry.spans, key=lambda s: (s.start, s.pid, s.span_id)):
        end = span.end if span.end is not None else span.start
        args: dict = dict(span.labels)
        args["cpu_ms"] = round(span.cpu_seconds * 1e3, 6)
        if span.error:
            args["error"] = span.error
        events.append(
            {
                "ph": "X",
                "cat": "span",
                "name": span.name,
                "ts": span.start * 1e6,
                "dur": max(0.0, (end - span.start)) * 1e6,
                "pid": span.pid,
                "tid": span.pid,
                "args": args,
            }
        )
        last_ts[span.pid] = max(last_ts.get(span.pid, 0.0), end * 1e6)
    pid = int(telemetry.meta.get("pid", 0))
    for metric in telemetry.metrics():
        if not isinstance(metric, (Counter, Gauge)):
            continue
        for labels, state in metric.series_items():
            series_name = _series_name(metric.name, labels)
            events.append(
                {
                    "ph": "C",
                    "cat": metric.kind,
                    "name": series_name,
                    "ts": last_ts.get(pid, 0.0),
                    "pid": pid,
                    "tid": pid,
                    "args": {"value": state.value},  # type: ignore[union-attr]
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# Prometheus text exposition ---------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _series_name(name: str, labels: Mapping[str, str]) -> str:
    return name + _label_str(labels)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(telemetry: Telemetry) -> str:
    """A Prometheus text-format snapshot of every metric series."""
    lines: list[str] = []
    for metric in telemetry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for labels, state in metric.series_items():
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.buckets, state.counts):  # type: ignore[union-attr]
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{metric.name}_bucket{_label_str(bucket_labels)} {cumulative}"
                    )
                cumulative += state.counts[-1]  # type: ignore[union-attr]
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(f"{metric.name}_bucket{_label_str(inf_labels)} {cumulative}")
                lines.append(
                    f"{metric.name}_sum{_label_str(labels)} {_format_value(state.sum)}"  # type: ignore[union-attr]
                )
                lines.append(f"{metric.name}_count{_label_str(labels)} {state.count}")  # type: ignore[union-attr]
            else:
                lines.append(
                    f"{metric.name}{_label_str(labels)} {_format_value(state.value)}"  # type: ignore[union-attr]
                )
    return "\n".join(lines) + ("\n" if lines else "")


# Human summary ----------------------------------------------------------------


def summary_dict(telemetry: Telemetry) -> dict:
    """Compact numeric summary: per-span-name totals and per-series values."""
    span_totals: dict[str, dict] = {}
    for span in telemetry.spans:
        entry = span_totals.setdefault(
            span.name, {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["wall_seconds"] += span.wall_seconds
        entry["cpu_seconds"] += span.cpu_seconds
        if span.error:
            entry["errors"] += 1
    metrics: dict[str, dict] = {}
    for metric in telemetry.metrics():
        series_out = {}
        for labels, state in metric.series_items():
            key = _label_str(labels) or "{}"
            if isinstance(metric, Histogram):
                series_out[key] = {
                    "count": state.count,  # type: ignore[union-attr]
                    "sum": state.sum,  # type: ignore[union-attr]
                    "mean": state.mean,  # type: ignore[union-attr]
                    "p50": state.quantile(0.50),  # type: ignore[union-attr]
                    "p95": state.quantile(0.95),  # type: ignore[union-attr]
                }
            else:
                series_out[key] = state.value  # type: ignore[union-attr]
        metrics[metric.name] = {"kind": metric.kind, "unit": getattr(metric, "unit", ""),
                                "series": series_out}
    return {
        "run_id": telemetry.meta.get("run_id", ""),
        "spans": span_totals,
        "metrics": metrics,
    }


def render_text(telemetry: Telemetry) -> str:
    """Multi-line human summary: span tree, then metric tables."""
    lines = [
        f"telemetry summary (run {telemetry.meta.get('run_id') or '-'}, "
        f"{len(telemetry.spans)} spans)",
        "=" * 40,
    ]
    children: dict[int | None, list] = {}
    for span in sorted(telemetry.spans, key=lambda s: (s.pid, s.start, s.span_id)):
        children.setdefault((span.pid, span.parent_id), []).append(span)

    def _walk(pid: int, parent_id: int | None, indent: int) -> None:
        for span in children.get((pid, parent_id), []):
            label_str = _label_str(span.labels)
            error = f"  ERROR={span.error}" if span.error else ""
            lines.append(
                f"{'  ' * indent}{span.name}{label_str}: "
                f"{span.wall_seconds * 1e3:.2f} ms wall, "
                f"{span.cpu_seconds * 1e3:.2f} ms cpu{error}"
            )
            _walk(pid, span.span_id, indent + 1)

    pids = sorted({span.pid for span in telemetry.spans})
    for pid in pids:
        if len(pids) > 1:
            lines.append(f"process {pid}:")
        _walk(pid, None, 1 if len(pids) > 1 else 0)

    for metric in telemetry.metrics():
        lines.append("")
        unit = getattr(metric, "unit", "")
        suffix = f" ({unit})" if unit else ""
        lines.append(f"{metric.kind} {metric.name}{suffix}: {metric.help}".rstrip(": "))
        for labels, state in metric.series_items():
            key = _label_str(labels) or "(no labels)"
            if isinstance(metric, Histogram):
                lines.append(
                    f"  {key}: count={state.count} mean={state.mean:.4g} "  # type: ignore[union-attr]
                    f"p50={state.quantile(0.5):.4g} p95={state.quantile(0.95):.4g}"  # type: ignore[union-attr]
                )
            else:
                lines.append(f"  {key}: {_format_value(state.value)}")  # type: ignore[union-attr]
    return "\n".join(lines)


# Artifact bundle --------------------------------------------------------------


def save(telemetry: Telemetry, obs_dir: str) -> dict[str, str]:
    """Write all four artifacts into ``obs_dir``; returns name → path."""
    os.makedirs(obs_dir, exist_ok=True)
    paths = {
        "events": os.path.join(obs_dir, EVENTS_FILENAME),
        "chrome_trace": os.path.join(obs_dir, CHROME_TRACE_FILENAME),
        "prometheus": os.path.join(obs_dir, PROMETHEUS_FILENAME),
        "summary": os.path.join(obs_dir, SUMMARY_FILENAME),
    }
    write_events_jsonl(telemetry, paths["events"])
    with open(paths["chrome_trace"], "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(telemetry), handle, sort_keys=True)
    with open(paths["prometheus"], "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(telemetry))
    with open(paths["summary"], "w", encoding="utf-8") as handle:
        handle.write(render_text(telemetry))
        handle.write("\n")
    return paths


# Comparison rows --------------------------------------------------------------


def compare_rows(telemetry: Telemetry) -> dict[str, dict]:
    """Telemetry as campaign-compare rows: one row per metric series.

    Row ids are ``name{label="value",...}``; each row's ``metrics`` dict uses
    the real metric name as key (histograms expand to ``.count`` /
    ``.mean_<unit>`` / ``.p95_<unit>`` leaves), so
    :func:`repro.campaign.report.metric_direction` classifies latency and
    throughput changes exactly as it does campaign step metrics.
    """
    rows: dict[str, dict] = {}
    for metric in telemetry.metrics():
        for labels, state in metric.series_items():
            series = _series_name(metric.name, labels)
            if isinstance(metric, Histogram):
                unit = metric.unit or "value"
                rows[series] = {
                    "scenario": series,
                    "metrics": {
                        f"{metric.name}.count": state.count,  # type: ignore[union-attr]
                        f"{metric.name}.mean_{unit}": state.mean,  # type: ignore[union-attr]
                        f"{metric.name}.p95_{unit}": state.quantile(0.95),  # type: ignore[union-attr]
                    },
                }
            else:
                rows[series] = {
                    "scenario": series,
                    "metrics": {metric.name: state.value},  # type: ignore[union-attr]
                }
    return rows
