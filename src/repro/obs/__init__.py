"""``repro.obs`` — telemetry for the whole generation stack.

A dependency-free observability core: hierarchical :meth:`Telemetry.span`
context managers with monotonic wall/CPU timing, typed counters / gauges /
histograms with labeled series, picklable snapshots that merge across
process-pool workers, and pluggable emitters — an append-only JSONL event
log, a Chrome ``trace_event`` export (``chrome://tracing`` / Perfetto), a
Prometheus text-exposition snapshot, and a human summary folded into the
reproducibility report.

Instrumented subsystems (the pipeline runner, the trace replayer, the
materializer, the campaign runner) pick the active telemetry up from the
:func:`current` context binding::

    from repro import obs

    telemetry = obs.Telemetry(run_id="demo")
    with obs.use(telemetry):
        Impressions(config).generate()
    obs.save(telemetry, "out/obs")     # events.jsonl, trace.json, metrics.prom, summary.txt

or pass ``--obs-dir out/obs`` to ``impressions`` / ``impressions trace
replay`` / ``impressions materialize`` / ``impressions campaign run`` and
inspect the artifacts with ``impressions obs summarize|export|compare``.
"""

from repro.obs.core import (
    DEFAULT_LATENCY_BUCKETS_MS,
    EVENT_FORMAT_VERSION,
    Counter,
    Gauge,
    Histogram,
    SpanRecord,
    Telemetry,
    TelemetryError,
    current,
    use,
)
from repro.obs.export import (
    CHROME_TRACE_FILENAME,
    EVENTS_FILENAME,
    PROMETHEUS_FILENAME,
    SUMMARY_FILENAME,
    chrome_trace,
    compare_rows,
    prometheus_text,
    read_events_jsonl,
    render_text,
    resolve_events_path,
    save,
    summary_dict,
    write_events_jsonl,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EVENT_FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanRecord",
    "Telemetry",
    "TelemetryError",
    "current",
    "use",
    "EVENTS_FILENAME",
    "CHROME_TRACE_FILENAME",
    "PROMETHEUS_FILENAME",
    "SUMMARY_FILENAME",
    "chrome_trace",
    "compare_rows",
    "prometheus_text",
    "read_events_jsonl",
    "render_text",
    "resolve_events_path",
    "save",
    "summary_dict",
    "write_events_jsonl",
]
