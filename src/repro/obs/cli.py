"""``impressions obs`` — inspect, re-export and diff telemetry artifacts.

Works on the canonical JSONL event log an ``--obs-dir`` run wrote (a
directory containing ``events.jsonl`` or the file itself)::

    impressions obs summarize out/obs
    impressions obs export out/obs --format chrome --out trace.json
    impressions obs export out/obs --format prom
    impressions obs compare baseline/obs candidate/obs --tolerance 0.1

``compare`` reuses the campaign comparison machinery
(:func:`repro.campaign.report.compare`): each metric series becomes a row,
histograms expand to count/mean/p95 leaves, and the usual suffix rules
(``_ms`` lower-is-better, ``_ops_s`` higher-is-better, …) classify changes
as regressions / improvements / drift.  Exit code 1 on regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.core import TelemetryError
from repro.obs.export import (
    chrome_trace,
    compare_rows,
    prometheus_text,
    read_events_jsonl,
    render_text,
    resolve_events_path,
    summary_dict,
    write_events_jsonl,
)

__all__ = ["main", "build_parser"]

EXPORT_FORMATS = ("jsonl", "chrome", "prom")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions obs",
        description="Inspect, re-export and diff telemetry written by --obs-dir runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="human or JSON summary of one telemetry event log"
    )
    summarize.add_argument("path", help="obs directory or events.jsonl file")
    summarize.add_argument(
        "--json", action="store_true", help="print the summary as a JSON document"
    )

    export = sub.add_parser(
        "export", help="re-derive an artifact format from the event log"
    )
    export.add_argument("path", help="obs directory or events.jsonl file")
    export.add_argument(
        "--format",
        choices=EXPORT_FORMATS,
        default="jsonl",
        help=(
            "jsonl: canonical event log; chrome: trace_event JSON for "
            "chrome://tracing / Perfetto; prom: Prometheus text exposition"
        ),
    )
    export.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write here instead of stdout",
    )

    compare = sub.add_parser(
        "compare",
        help="diff two runs' metric snapshots (counters, gauges, histogram summaries)",
    )
    compare.add_argument("baseline", help="obs directory or events.jsonl of the reference run")
    compare.add_argument("candidate", help="same, for the run under test")
    compare.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed relative change before a metric is flagged (default 0.05)",
    )
    compare.add_argument("--json", action="store_true", help="JSON comparison document")
    return parser


def _load(path: str):
    return read_events_jsonl(resolve_events_path(path))


def _run_summarize(args: argparse.Namespace) -> int:
    telemetry = _load(args.path)
    if args.json:
        print(json.dumps(summary_dict(telemetry), sort_keys=True, default=str))
    else:
        print(render_text(telemetry))
    return 0


def _run_export(args: argparse.Namespace) -> int:
    telemetry = _load(args.path)
    if args.format == "jsonl":
        if args.out:
            write_events_jsonl(telemetry, args.out)
        else:
            write_events_jsonl(telemetry, sys.stdout)
        return 0
    if args.format == "chrome":
        document = json.dumps(chrome_trace(telemetry), sort_keys=True)
    else:
        document = prometheus_text(telemetry)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(document)
            if not document.endswith("\n"):
                handle.write("\n")
    else:
        print(document)
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from repro.campaign.report import compare

    baseline = compare_rows(_load(args.baseline))
    candidate = compare_rows(_load(args.candidate))
    result = compare(baseline, candidate, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(result.as_dict(), sort_keys=True, default=str))
    else:
        print(result.render_text())
    return 1 if result.has_regressions else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "summarize":
            return _run_summarize(args)
        if args.command == "export":
            return _run_export(args)
        return _run_compare(args)
    except (OSError, TelemetryError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
