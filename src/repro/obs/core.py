"""The dependency-free telemetry core: spans, metrics, snapshots.

One :class:`Telemetry` object accompanies one run (a pipeline execution, a
trace replay, a campaign scenario).  It records two kinds of data:

* **spans** — hierarchical wall/CPU timed regions opened with
  :meth:`Telemetry.span`; nesting is tracked automatically, exceptions close
  the span and tag it with the error class, and a fixed clock can be injected
  so tests get deterministic timestamps;
* **metrics** — typed counters, gauges and histograms registered by name with
  declared label names; each ``(metric, label values)`` pair is an
  independent series (``stage=...``, ``op_class=...``, ``sink=...``,
  ``worker=...``).

Everything is plain data underneath: :meth:`Telemetry.snapshot` returns a
picklable/JSON-able dict, :meth:`Telemetry.merge` folds another process's
snapshot into this one (counters and histogram buckets add, gauges take the
incoming value), and :meth:`Telemetry.to_events` /
:meth:`Telemetry.from_events` round-trip through the append-only JSONL event
log that the exporters in :mod:`repro.obs.export` consume.

Instrumented subsystems find the active telemetry through a
:mod:`contextvars` binding: ``with use(telemetry): ...`` makes
:func:`current` return it for everything on the call path (the pipeline, the
trace replayer, the materializer), so campaign workers instrument the whole
stack by binding once.  When nothing is bound, instrumentation is disabled
and the hot paths pay a single ``is None`` check.
"""

from __future__ import annotations

import bisect
import contextlib
import contextvars
import os
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "EVENT_FORMAT_VERSION",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "TelemetryError",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "current",
    "use",
]

#: Bumped when the JSONL event-log schema changes incompatibly.
EVENT_FORMAT_VERSION = 1

#: Default histogram buckets for simulated/measured latencies in milliseconds.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class TelemetryError(ValueError):
    """Raised on invalid metric/span usage (bad names, kind clashes, …)."""


def _check_name(name: str, what: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise TelemetryError(
            f"invalid {what} {name!r}: must match [a-zA-Z_][a-zA-Z0-9_]*"
        )
    return name


@dataclass
class SpanRecord:
    """One timed region: name, labels, wall/CPU interval, hierarchy."""

    span_id: int
    parent_id: int | None
    name: str
    labels: dict[str, str]
    start: float
    cpu_start: float
    end: float | None = None
    cpu_end: float | None = None
    error: str | None = None
    #: process the span was recorded in (distinguishes merged worker spans).
    pid: int = 0

    @property
    def wall_seconds(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def cpu_seconds(self) -> float:
        return (self.cpu_end - self.cpu_start) if self.cpu_end is not None else 0.0

    def as_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": dict(self.labels),
            "start": self.start,
            "end": self.end,
            "cpu_start": self.cpu_start,
            "cpu_end": self.cpu_end,
            "pid": self.pid,
        }
        if self.error is not None:
            out["error"] = self.error
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanRecord":
        return cls(
            span_id=int(data["span_id"]),
            parent_id=(None if data.get("parent_id") is None else int(data["parent_id"])),
            name=str(data["name"]),
            labels={str(k): str(v) for k, v in dict(data.get("labels", {})).items()},
            start=float(data["start"]),
            cpu_start=float(data.get("cpu_start", 0.0)),
            end=(None if data.get("end") is None else float(data["end"])),
            cpu_end=(None if data.get("cpu_end") is None else float(data["cpu_end"])),
            error=(None if data.get("error") is None else str(data["error"])),
            pid=int(data.get("pid", 0)),
        )


# Metrics ----------------------------------------------------------------------


class _Metric:
    """Shared series bookkeeping for the three metric kinds."""

    kind = ""

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = _check_name(name, "metric name")
        self.help = help
        self.label_names = tuple(_check_name(label, "label name") for label in label_names)
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        given = set(labels)
        declared = set(self.label_names)
        if given != declared:
            raise TelemetryError(
                f"metric {self.name!r} declares labels {sorted(declared)}, "
                f"got {sorted(given)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def series_items(self) -> list[tuple[dict[str, str], object]]:
        """``(labels, state)`` per series, sorted by label values."""
        return [
            (dict(zip(self.label_names, key)), self._series[key])
            for key in sorted(self._series)
        ]


class Counter(_Metric):
    """A monotonically increasing sum per label series."""

    kind = "counter"

    def labels(self, **labels: object) -> "_CounterSeries":
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = _CounterSeries()
            self._series[key] = series
        return series  # type: ignore[return-value]

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: object) -> float:
        return self.labels(**labels).value

    def total(self) -> float:
        return float(sum(series.value for series in self._series.values()))  # type: ignore[union-attr]


class _CounterSeries:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up; use a gauge for signed values")
        self.value += amount


class Gauge(_Metric):
    """A point-in-time value per label series (set/inc/dec)."""

    kind = "gauge"

    def labels(self, **labels: object) -> "_GaugeSeries":
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = _GaugeSeries()
            self._series[key] = series
        return series  # type: ignore[return-value]

    def set(self, value: float, **labels: object) -> None:
        self.labels(**labels).set(value)

    def value(self, **labels: object) -> float:
        return self.labels(**labels).value


class _GaugeSeries:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Metric):
    """Bucketed distribution per label series (Prometheus-style ``le`` buckets).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the tail.  ``unit`` names the observed quantity's unit (``ms``,
    ``seconds``, ``bytes``) and is used by summaries and the comparison rows.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        unit: str = "",
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError("histogram buckets must be strictly increasing and non-empty")
        self.buckets = bounds
        self.unit = unit

    def labels(self, **labels: object) -> "_HistogramSeries":
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(self.buckets)
            self._series[key] = series
        return series  # type: ignore[return-value]

    def observe(self, value: float, **labels: object) -> None:
        self.labels(**labels).observe(value)


class _HistogramSeries:
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        # counts[i] observations <= bounds[i]; counts[-1] is the +Inf bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk observation — vectorised when numpy is importable.

        The replayer collects per-op latencies into plain lists in its hot
        loop and buckets them here afterwards, so per-op instrumentation cost
        stays a single ``list.append``.
        """
        values = list(values)
        if not values:
            return
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a repo-wide dep
            for value in values:
                self.observe(value)
            return
        array = np.asarray(values, dtype=float)
        indices = np.searchsorted(np.asarray(self.bounds), array, side="left")
        for index, count in zip(*np.unique(indices, return_counts=True)):
            self.counts[int(index)] += int(count)
        self.sum += float(array.sum())
        self.count += len(values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1] if self.bounds else 0.0
        return self.bounds[-1] if self.bounds else 0.0


# Telemetry --------------------------------------------------------------------

_CURRENT: contextvars.ContextVar["Telemetry | None"] = contextvars.ContextVar(
    "impressions_telemetry", default=None
)


def current() -> "Telemetry | None":
    """The telemetry bound on this call path, or None (instrumentation off)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use(telemetry: "Telemetry | None") -> Iterator["Telemetry | None"]:
    """Bind ``telemetry`` as :func:`current` for the with-block."""
    token = _CURRENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _CURRENT.reset(token)


class Telemetry:
    """Per-run telemetry: a span log plus registered metric families.

    Args:
        run_id: free-form identifier recorded in the event-log meta line.
        clock: monotonic wall clock (seconds); ``time.perf_counter`` by
            default.  Tests inject a fixed/stepping clock for deterministic
            event ordering.
        cpu_clock: process CPU clock; ``time.process_time`` by default.
        wall_time: absolute epoch clock recorded once in the meta line
            (``time.time`` by default).
    """

    def __init__(
        self,
        run_id: str = "",
        *,
        clock: Callable[[], float] | None = None,
        cpu_clock: Callable[[], float] | None = None,
        wall_time: Callable[[], float] | None = None,
    ) -> None:
        self._clock = clock or time.perf_counter
        self._cpu_clock = cpu_clock or time.process_time
        self._epoch = self._clock()
        self._cpu_epoch = self._cpu_clock()
        self.meta: dict = {
            "format": EVENT_FORMAT_VERSION,
            "run_id": run_id,
            "pid": os.getpid(),
            "created_unix": float((wall_time or time.time)()),
        }
        self.spans: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []
        self._next_span_id = 0
        self._metrics: dict[str, _Metric] = {}

    # Spans ------------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _cpu_now(self) -> float:
        return self._cpu_clock() - self._cpu_epoch

    @contextlib.contextmanager
    def span(self, name: str, **labels: object) -> Iterator[SpanRecord]:
        """Open a timed span; nests under the innermost open span.

        The span is closed (end timestamps set) whether the block exits
        normally or by exception; an exception additionally records the
        exception class name on the span's ``error`` field before
        propagating.
        """
        record = SpanRecord(
            span_id=self._next_span_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=str(name),
            labels={str(key): str(value) for key, value in labels.items()},
            start=self._now(),
            cpu_start=self._cpu_now(),
            pid=int(self.meta["pid"]),
        )
        self._next_span_id += 1
        self.spans.append(record)
        self._stack.append(record)
        try:
            yield record
        except BaseException as error:
            record.error = type(error).__name__
            raise
        finally:
            self._stack.pop()
            record.end = self._now()
            record.cpu_end = self._cpu_now()

    # Metric registration ----------------------------------------------------

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if existing.kind != metric.kind or existing.label_names != metric.label_names:
                raise TelemetryError(
                    f"metric {metric.name!r} already registered as {existing.kind} "
                    f"with labels {list(existing.label_names)}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        unit: str = "",
    ) -> Histogram:
        return self._register(Histogram(name, help, labels, buckets, unit))  # type: ignore[return-value]

    def metrics(self) -> list[_Metric]:
        """Registered metric families, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    # Snapshot / merge -------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable, JSON-able view of everything recorded so far."""
        metrics: dict[str, dict] = {}
        for metric in self.metrics():
            family: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "series": [],
            }
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
                family["unit"] = metric.unit
            for labels, state in metric.series_items():
                if isinstance(state, _HistogramSeries):
                    family["series"].append(
                        {
                            "labels": labels,
                            "counts": list(state.counts),
                            "sum": state.sum,
                            "count": state.count,
                        }
                    )
                else:
                    family["series"].append({"labels": labels, "value": state.value})  # type: ignore[union-attr]
            metrics[metric.name] = family
        return {
            "meta": dict(self.meta),
            "spans": [span.as_dict() for span in self.spans],
            "metrics": metrics,
        }

    def merge(self, snapshot: Mapping, extra_labels: Mapping[str, object] | None = None) -> None:
        """Fold a child :meth:`snapshot` (e.g. from a worker process) into this.

        Counters and histogram bucket counts/sums add; gauges take the
        incoming value (give workers distinguishing labels when that is not
        what you want).  Spans are appended verbatim — their recorded ``pid``
        keeps worker timelines apart in the Chrome trace.  ``extra_labels``
        are added to every merged metric series (the campaign runner tags
        worker snapshots with ``scenario=...`` spans already; pass e.g.
        ``{"worker": 3}`` to keep per-worker series separate instead).
        """
        extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
        base_id = self._next_span_id
        id_map: dict[int, int] = {}
        for index, span_data in enumerate(snapshot.get("spans", [])):
            record = SpanRecord.from_dict(span_data)
            id_map[record.span_id] = base_id + index
        for span_data in snapshot.get("spans", []):
            record = SpanRecord.from_dict(span_data)
            record.span_id = id_map[record.span_id]
            record.parent_id = (
                id_map.get(record.parent_id) if record.parent_id is not None else None
            )
            self.spans.append(record)
        self._next_span_id = base_id + len(id_map)

        for name, family in snapshot.get("metrics", {}).items():
            kind = family.get("kind")
            label_names = list(family.get("label_names", [])) + sorted(extra)
            if kind == "counter":
                metric: _Metric = self.counter(name, family.get("help", ""), label_names)
            elif kind == "gauge":
                metric = self.gauge(name, family.get("help", ""), label_names)
            elif kind == "histogram":
                metric = self.histogram(
                    name,
                    family.get("help", ""),
                    label_names,
                    buckets=family.get("buckets", DEFAULT_LATENCY_BUCKETS_MS),
                    unit=family.get("unit", ""),
                )
            else:
                raise TelemetryError(f"cannot merge metric {name!r} of unknown kind {kind!r}")
            for entry in family.get("series", []):
                labels = {**dict(entry.get("labels", {})), **extra}
                if kind == "counter":
                    metric.labels(**labels).inc(float(entry.get("value", 0.0)))  # type: ignore[union-attr]
                elif kind == "gauge":
                    metric.labels(**labels).set(float(entry.get("value", 0.0)))  # type: ignore[union-attr]
                else:
                    series = metric.labels(**labels)  # type: ignore[union-attr]
                    counts = list(entry.get("counts", []))
                    if len(counts) != len(series.counts):
                        raise TelemetryError(
                            f"histogram {name!r}: bucket count mismatch on merge "
                            f"({len(counts)} vs {len(series.counts)})"
                        )
                    for index, count in enumerate(counts):
                        series.counts[index] += int(count)
                    series.sum += float(entry.get("sum", 0.0))
                    series.count += int(entry.get("count", 0))

    # Event-log round trip ---------------------------------------------------

    def to_events(self) -> list[dict]:
        """The canonical, deterministic event list of this telemetry.

        One ``meta`` event, then every span (sorted by start time then span
        id), then one ``metric`` event per series (sorted by metric name then
        label values).  Two runs under an identical injected clock produce an
        identical event list.
        """
        events: list[dict] = [{"type": "meta", **self.meta}]
        for span in sorted(self.spans, key=lambda s: (s.start, s.pid, s.span_id)):
            events.append({"type": "span", **span.as_dict()})
        snapshot = self.snapshot()
        for name in sorted(snapshot["metrics"]):
            family = snapshot["metrics"][name]
            for entry in family["series"]:
                event = {
                    "type": "metric",
                    "name": name,
                    "kind": family["kind"],
                    "help": family["help"],
                    "label_names": family["label_names"],
                    **entry,
                }
                if family["kind"] == "histogram":
                    event["buckets"] = family["buckets"]
                    event["unit"] = family["unit"]
                events.append(event)
        return events

    @classmethod
    def from_events(cls, events: Iterable[Mapping]) -> "Telemetry":
        """Rebuild a telemetry object from :meth:`to_events` output."""
        telemetry = cls()
        max_span_id = -1
        for event in events:
            event_type = event.get("type")
            if event_type == "meta":
                meta = {key: value for key, value in event.items() if key != "type"}
                fmt = int(meta.get("format", -1))
                if fmt != EVENT_FORMAT_VERSION:
                    raise TelemetryError(
                        f"unsupported event-log format {fmt} (expected {EVENT_FORMAT_VERSION})"
                    )
                telemetry.meta = meta
            elif event_type == "span":
                record = SpanRecord.from_dict(event)
                telemetry.spans.append(record)
                max_span_id = max(max_span_id, record.span_id)
            elif event_type == "metric":
                kind = event.get("kind")
                name = str(event.get("name"))
                label_names = list(event.get("label_names", []))
                labels = dict(event.get("labels", {}))
                if kind == "counter":
                    telemetry.counter(name, str(event.get("help", "")), label_names).labels(
                        **labels
                    ).inc(float(event.get("value", 0.0)))
                elif kind == "gauge":
                    telemetry.gauge(name, str(event.get("help", "")), label_names).labels(
                        **labels
                    ).set(float(event.get("value", 0.0)))
                elif kind == "histogram":
                    histogram = telemetry.histogram(
                        name,
                        str(event.get("help", "")),
                        label_names,
                        buckets=event.get("buckets", DEFAULT_LATENCY_BUCKETS_MS),
                        unit=str(event.get("unit", "")),
                    )
                    series = histogram.labels(**labels)
                    counts = list(event.get("counts", []))
                    if len(counts) != len(series.counts):
                        raise TelemetryError(
                            f"histogram {name!r}: bucket count mismatch in event log"
                        )
                    for index, count in enumerate(counts):
                        series.counts[index] += int(count)
                    series.sum += float(event.get("sum", 0.0))
                    series.count += int(event.get("count", 0))
                else:
                    raise TelemetryError(f"metric event with unknown kind {kind!r}")
            else:
                raise TelemetryError(f"unknown event type {event_type!r}")
        telemetry._next_span_id = max_span_id + 1
        return telemetry
