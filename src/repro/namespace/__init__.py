"""Namespace (directory tree) generation.

Phase one of image creation (Section 3.3.1): build the skeletal directory
tree with the generative model of Agrawal et al. — each new directory picks an
existing parent with probability proportional to ``C(d) + 2`` where ``C(d)``
is the parent's current subdirectory count.  Phase two (Section 3.3.2) places
files into the tree according to the depth and directory-size models, with
optional bias toward "special" directories.

* :mod:`repro.namespace.tree` — the in-memory tree model (directories, files).
* :mod:`repro.namespace.generative_model` — the Monte-Carlo directory-tree
  generator plus deterministic flat/deep tree builders used by Figure 1.
* :mod:`repro.namespace.placement` — the multiplicative file-depth model and
  parent-directory selection.
* :mod:`repro.namespace.special_dirs` — special-directory bias (Figure 2(h)).
"""

from repro.namespace.generative_model import (
    GenerativeTreeModel,
    build_deep_tree,
    build_flat_tree,
)
from repro.namespace.placement import FilePlacer, PlacementModel
from repro.namespace.special_dirs import SpecialDirectorySpec, install_special_directories
from repro.namespace.tree import DirectoryNode, FileNode, FileSystemTree

__all__ = [
    "FileSystemTree",
    "DirectoryNode",
    "FileNode",
    "GenerativeTreeModel",
    "build_flat_tree",
    "build_deep_tree",
    "FilePlacer",
    "PlacementModel",
    "SpecialDirectorySpec",
    "install_special_directories",
]
