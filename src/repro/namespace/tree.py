"""In-memory file-system tree model.

A :class:`FileSystemTree` holds the namespace being generated: a root
:class:`DirectoryNode`, its recursive children, and :class:`FileNode` leaves.
The tree supports the statistics all the accuracy figures need (directories by
depth, directories by subdirectory count, files by depth, bytes by depth,
directory file counts) and can walk itself in the orders the workload
simulators use.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.layout.disk import expand_extents

__all__ = ["FileNode", "DirectoryNode", "FileSystemTree"]


@dataclass(eq=False)
class FileNode:
    """A single file in the namespace.

    Attributes:
        name: file name (without directory components).
        size: logical size in bytes.
        extension: extension without the leading dot (``"txt"``), or ``""``
            for extensionless files (the dataset's ``null`` bucket).
        depth: namespace depth of the file (root directory is depth 0, a file
            directly inside the root has depth 1).
        parent: the containing directory.
        content_kind: coarse content class (``text``, ``binary``, ``image``,
            ...) assigned by the content stage; used by the search workloads.
        file_id: index of the file within its image (stable across the
            image's lifetime; used to seed per-file content).
        first_block: first block number assigned by the layout stage, or None
            before layout.
        extents: ``(start, length)`` runs of contiguous blocks assigned on the
            simulated disk, in logical (file offset) order.  The expanded
            per-block view remains available as the ``block_list`` property.
    """

    name: str
    size: int
    extension: str
    depth: int
    parent: "DirectoryNode | None" = None
    content_kind: str = "binary"
    file_id: int = -1
    first_block: int | None = None
    extents: list[tuple[int, int]] = field(default_factory=list)
    #: optional (created, modified, accessed) POSIX timestamps assigned by the
    #: timestamp model; None when timestamps were not requested.
    timestamps: object | None = None
    #: optional explicit content seed pair ``(content_seed, file_id)``.  Files
    #: normally derive their bytes from the owning image's content seed and
    #: their own ``file_id``; a file adopted from another image (shard merge)
    #: pins the pair it was generated under here so its bytes survive the
    #: re-numbering.
    content_key: tuple[int, int] | None = None

    @property
    def block_list(self) -> list[int]:
        """Block numbers on the simulated disk, expanded from :attr:`extents`."""
        return expand_extents(self.extents)

    @block_list.setter
    def block_list(self, blocks: list[int]) -> None:
        extents: list[tuple[int, int]] = []
        for block in blocks:
            if extents and extents[-1][0] + extents[-1][1] == block:
                extents[-1] = (extents[-1][0], extents[-1][1] + 1)
            else:
                extents.append((block, 1))
        self.extents = extents

    @property
    def block_count(self) -> int:
        """Number of blocks assigned on the simulated disk (O(1) in extents)."""
        return sum(length for _, length in self.extents)

    def path(self) -> str:
        """Full path from the root, ``/`` separated."""
        if self.parent is None:
            return "/" + self.name
        return self.parent.path().rstrip("/") + "/" + self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FileNode({self.path()!r}, size={self.size})"


@dataclass(eq=False)
class DirectoryNode:
    """A directory in the namespace."""

    name: str
    depth: int
    parent: "DirectoryNode | None" = None
    subdirectories: list["DirectoryNode"] = field(default_factory=list)
    files: list[FileNode] = field(default_factory=list)
    special_label: str | None = None

    @property
    def subdirectory_count(self) -> int:
        return len(self.subdirectories)

    @property
    def file_count(self) -> int:
        return len(self.files)

    def add_subdirectory(self, name: str) -> "DirectoryNode":
        child = DirectoryNode(name=name, depth=self.depth + 1, parent=self)
        self.subdirectories.append(child)
        return child

    def add_file(self, file_node: FileNode) -> None:
        file_node.parent = self
        file_node.depth = self.depth + 1
        self.files.append(file_node)

    def path(self) -> str:
        if self.parent is None:
            return "/"
        return self.parent.path().rstrip("/") + "/" + self.name

    def walk(self) -> Iterator["DirectoryNode"]:
        """Depth-first pre-order traversal of the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.subdirectories))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirectoryNode({self.path()!r}, depth={self.depth}, "
            f"subdirs={self.subdirectory_count}, files={self.file_count})"
        )


class FileSystemTree:
    """The complete namespace being generated.

    The tree keeps flat lists of its directories and files so statistics and
    random selection remain O(1)/O(n) regardless of tree shape.
    """

    def __init__(self) -> None:
        self._root = DirectoryNode(name="", depth=0, parent=None)
        self._directories: list[DirectoryNode] = [self._root]
        self._files: list[FileNode] = []

    # Construction ---------------------------------------------------------

    @property
    def root(self) -> DirectoryNode:
        return self._root

    def create_directory(self, parent: DirectoryNode, name: str | None = None) -> DirectoryNode:
        """Create a directory under ``parent`` and register it with the tree."""
        if name is None:
            name = f"dir{len(self._directories):05d}"
        child = parent.add_subdirectory(name)
        self._directories.append(child)
        return child

    def create_file(
        self,
        parent: DirectoryNode,
        size: int,
        extension: str,
        name: str | None = None,
        content_kind: str = "binary",
    ) -> FileNode:
        """Create a file in ``parent`` and register it with the tree."""
        if size < 0:
            raise ValueError("file size must be non-negative")
        if name is None:
            stem = f"file{len(self._files):06d}"
            name = f"{stem}.{extension}" if extension else stem
        node = FileNode(
            name=name,
            size=int(size),
            extension=extension,
            depth=parent.depth + 1,
            parent=parent,
            content_kind=content_kind,
            file_id=len(self._files),
        )
        parent.files.append(node)
        self._files.append(node)
        return node

    # Adoption (shard merge) -------------------------------------------------

    def adopt_file(self, parent: DirectoryNode, file_node: FileNode) -> FileNode:
        """Attach an existing :class:`FileNode` under ``parent`` and register it.

        The node keeps its metadata (size, extension, timestamps, extents,
        content kind) but is re-numbered with this tree's next ``file_id`` and
        re-parented, so adopted files participate in statistics, walking and
        materialization exactly like natively created ones.  Callers that need
        the node's content bytes to survive the re-numbering must pin
        :attr:`FileNode.content_key` first.
        """
        file_node.parent = parent
        file_node.depth = parent.depth + 1
        file_node.file_id = len(self._files)
        parent.files.append(file_node)
        self._files.append(file_node)
        return file_node

    def adopt_subtree(self, parent: DirectoryNode, directory: DirectoryNode) -> None:
        """Attach an existing directory subtree under ``parent``.

        Every directory in the subtree is registered with this tree in
        depth-first pre-order, and every contained file is adopted (see
        :meth:`adopt_file`) in its directory's order — a deterministic
        renumbering given the subtree.  Depths are recomputed from the new
        parent chain.
        """
        directory.parent = parent
        parent.subdirectories.append(directory)
        for node in directory.walk():
            node.depth = node.parent.depth + 1 if node.parent is not None else 0
            self._directories.append(node)
            contained, node.files = node.files, []
            for file_node in contained:
                self.adopt_file(node, file_node)

    # Accessors -------------------------------------------------------------

    @property
    def directories(self) -> list[DirectoryNode]:
        return list(self._directories)

    @property
    def files(self) -> list[FileNode]:
        return list(self._files)

    @property
    def directory_count(self) -> int:
        return len(self._directories)

    @property
    def file_count(self) -> int:
        return len(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(file.size for file in self._files)

    def max_depth(self) -> int:
        return max((directory.depth for directory in self._directories), default=0)

    # Statistics used by the accuracy figures -------------------------------

    def directories_by_depth(self) -> dict[int, int]:
        """Count of directories at each namespace depth (Figure 2(a))."""
        counts: dict[int, int] = {}
        for directory in self._directories:
            counts[directory.depth] = counts.get(directory.depth, 0) + 1
        return counts

    def directory_subdir_counts(self) -> list[int]:
        """Per-directory subdirectory counts (Figure 2(b))."""
        return [directory.subdirectory_count for directory in self._directories]

    def directory_file_counts(self) -> list[int]:
        """Per-directory file counts (the inverse-polynomial model target)."""
        return [directory.file_count for directory in self._directories]

    def files_by_depth(self) -> dict[int, int]:
        """Count of files at each namespace depth (Figure 2(f))."""
        counts: dict[int, int] = {}
        for file in self._files:
            counts[file.depth] = counts.get(file.depth, 0) + 1
        return counts

    def bytes_by_depth(self) -> dict[int, int]:
        """Total bytes at each namespace depth."""
        totals: dict[int, int] = {}
        for file in self._files:
            totals[file.depth] = totals.get(file.depth, 0) + file.size
        return totals

    def mean_bytes_per_file_by_depth(self) -> dict[int, float]:
        """Mean file size at each depth (Figure 2(g))."""
        counts = self.files_by_depth()
        totals = self.bytes_by_depth()
        return {depth: totals[depth] / counts[depth] for depth in counts if counts[depth]}

    def file_sizes(self) -> list[int]:
        return [file.size for file in self._files]

    def extension_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for file in self._files:
            key = file.extension or "null"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def extension_bytes(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for file in self._files:
            key = file.extension or "null"
            totals[key] = totals.get(key, 0) + file.size
        return totals

    def directories_at_depth(self, depth: int) -> list[DirectoryNode]:
        return [directory for directory in self._directories if directory.depth == depth]

    # Traversal -------------------------------------------------------------

    def walk_depth_first(self) -> Iterator[DirectoryNode]:
        """Depth-first pre-order over all directories (what ``find`` does)."""
        yield from self._root.walk()

    def walk_breadth_first(self) -> Iterator[DirectoryNode]:
        queue: deque[DirectoryNode] = deque([self._root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.subdirectories)

    def iter_files(self) -> Iterator[FileNode]:
        for directory in self.walk_depth_first():
            yield from directory.files

    def find_files(self, predicate: Callable[[FileNode], bool]) -> list[FileNode]:
        return [file for file in self._files if predicate(file)]

    def summary(self) -> dict:
        """Coarse summary statistics of the tree."""
        return {
            "directories": self.directory_count,
            "files": self.file_count,
            "total_bytes": self.total_bytes,
            "max_depth": self.max_depth(),
            "mean_file_size": (self.total_bytes / self.file_count) if self.file_count else 0.0,
        }
