"""File depth assignment and parent-directory selection (Section 3.3.2).

Placing a file involves two decisions the paper models separately and then
combines:

1. **Depth** — must satisfy both the distribution of *files* with depth
   (Poisson, λ=6.49) and the distribution of *bytes* with depth (represented
   by the mean file size at each depth).  Impressions combines the two with a
   multiplicative model: the probability of placing a file of size ``s`` at
   depth ``d`` is proportional to ``Poisson(d) · affinity(s, d)`` where the
   affinity term is a lognormal kernel centred on the desired mean bytes per
   file at depth ``d``.  Large files are therefore drawn toward depths whose
   target mean is large, which reproduces both curves at once
   (Figures 2(f)/(g)).

2. **Parent directory** — among directories at depth ``d − 1``, chosen so that
   the resulting per-directory file counts follow the inverse-polynomial model
   of Table 2.  Each candidate directory is assigned a target file count
   sampled from that model; parents are then selected with probability
   proportional to their remaining quota (plus a small floor so no directory
   is ever impossible).

Special directories (Figure 2(h)) intercept a configurable fraction of files
before the depth model runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.namespace.special_dirs import SpecialDirectorySpec
from repro.namespace.tree import DirectoryNode, FileSystemTree
from repro.stats.distributions import (
    InversePolynomialDistribution,
    ShiftedPoissonDistribution,
)

__all__ = ["PlacementModel", "FilePlacer", "DEFAULT_MEAN_BYTES_BY_DEPTH"]


#: Default mean file size (bytes) per namespace depth, loosely following the
#: shape of Figure 2(g): small files near the root, a hump around the depths
#: where program installs and media libraries live, then a slow decline.
DEFAULT_MEAN_BYTES_BY_DEPTH: Mapping[int, float] = {
    0: 24 * 1024,
    1: 48 * 1024,
    2: 320 * 1024,
    3: 512 * 1024,
    4: 768 * 1024,
    5: 640 * 1024,
    6: 384 * 1024,
    7: 256 * 1024,
    8: 160 * 1024,
    9: 112 * 1024,
    10: 80 * 1024,
    11: 64 * 1024,
    12: 48 * 1024,
    13: 40 * 1024,
    14: 32 * 1024,
    15: 28 * 1024,
    16: 24 * 1024,
}


@dataclass
class PlacementModel:
    """Parameters controlling file placement.

    Attributes:
        depth_distribution: Poisson model of file count by depth.
        mean_bytes_by_depth: desired mean file size per depth; depths missing
            from the mapping fall back to the overall mean of the mapping.
        directory_file_count: inverse-polynomial model of files per directory.
        affinity_sigma: width (in log space) of the size/depth affinity
            kernel; larger values weaken the bytes-by-depth criterion and
            recover a pure Poisson placement.
        special_directories: special-directory specs with their file biases.
        use_multiplicative_model: disable to fall back to the Poisson-only
            placement (the ablation benchmark flips this).
    """

    depth_distribution: ShiftedPoissonDistribution = field(
        default_factory=lambda: ShiftedPoissonDistribution(lam=6.49)
    )
    mean_bytes_by_depth: Mapping[int, float] = field(
        default_factory=lambda: dict(DEFAULT_MEAN_BYTES_BY_DEPTH)
    )
    directory_file_count: InversePolynomialDistribution = field(
        default_factory=lambda: InversePolynomialDistribution(degree=2.0, offset=2.36, max_value=4096)
    )
    affinity_sigma: float = 2.2
    special_directories: Sequence[SpecialDirectorySpec] = ()
    use_multiplicative_model: bool = True

    def __post_init__(self) -> None:
        if self.affinity_sigma <= 0:
            raise ValueError("affinity_sigma must be positive")
        total_bias = sum(spec.file_bias for spec in self.special_directories)
        if total_bias >= 1.0:
            raise ValueError("special-directory biases must sum to less than 1")

    def mean_bytes_at(self, depth: int) -> float:
        if depth in self.mean_bytes_by_depth:
            return float(self.mean_bytes_by_depth[depth])
        values = list(self.mean_bytes_by_depth.values())
        return float(np.mean(values)) if values else 64 * 1024.0


class FilePlacer:
    """Assigns a depth and a parent directory to each file being created."""

    def __init__(
        self,
        tree: FileSystemTree,
        model: PlacementModel,
        rng: np.random.Generator,
        special_nodes: Mapping[str, DirectoryNode] | None = None,
    ) -> None:
        self._tree = tree
        self._model = model
        self._rng = rng
        self._special_nodes = dict(special_nodes or {})
        self._max_depth = max(tree.max_depth(), 1)
        self._depth_weights_cache: dict[int, np.ndarray] = {}
        self._directories_by_depth: dict[int, list[DirectoryNode]] = {}
        self._quotas: dict[int, np.ndarray] = {}
        self._special_specs = {
            spec.name: spec for spec in model.special_directories if spec.name in self._special_nodes
        }

    # Depth selection --------------------------------------------------------

    def choose_depth(self, file_size: int) -> int:
        """Choose a namespace depth for a file of ``file_size`` bytes.

        The returned depth is clamped to ``1 .. max_depth + 1`` (a file must
        live inside some directory; parents live at ``depth - 1``).
        """
        max_file_depth = self._max_depth + 1
        depths = np.arange(1, max_file_depth + 1)
        weights = self._depth_weights(file_size, depths)
        total = weights.sum()
        if total <= 0:
            return int(depths[np.argmax(self._poisson_weights(depths))])
        chosen = self._rng.choice(depths, p=weights / total)
        return int(chosen)

    def _depth_weights(self, file_size: int, depths: np.ndarray) -> np.ndarray:
        poisson_weights = self._poisson_weights(depths)
        if not self._model.use_multiplicative_model:
            return poisson_weights
        affinity = np.empty(len(depths), dtype=float)
        log_size = math.log(max(file_size, 1))
        sigma = self._model.affinity_sigma
        for position, depth in enumerate(depths):
            target = math.log(max(self._model.mean_bytes_at(int(depth)), 1.0))
            affinity[position] = math.exp(-((log_size - target) ** 2) / (2.0 * sigma**2))
        return poisson_weights * affinity

    def _poisson_weights(self, depths: np.ndarray) -> np.ndarray:
        key = len(depths)
        if key not in self._depth_weights_cache:
            self._depth_weights_cache[key] = np.asarray(
                self._model.depth_distribution.pmf(depths), dtype=float
            )
        return self._depth_weights_cache[key]

    # Parent-directory selection ----------------------------------------------

    def choose_parent(self, depth: int) -> DirectoryNode:
        """Choose a parent directory at ``depth - 1`` for a file at ``depth``.

        If no directory exists at exactly ``depth - 1`` the nearest shallower
        populated depth is used (this only happens for degenerate trees).
        """
        parent_depth = depth - 1
        candidates = self._candidates_at(parent_depth)
        while not candidates and parent_depth > 0:
            parent_depth -= 1
            candidates = self._candidates_at(parent_depth)
        if not candidates:
            return self._tree.root
        quotas = self._quotas[parent_depth]
        weights = quotas - np.asarray([directory.file_count for directory in candidates], dtype=float)
        weights = np.maximum(weights, 0.25)
        index = int(self._rng.choice(len(candidates), p=weights / weights.sum()))
        return candidates[index]

    def _candidates_at(self, depth: int) -> list[DirectoryNode]:
        if depth < 0:
            return []
        if depth not in self._directories_by_depth:
            candidates = self._tree.directories_at_depth(depth)
            self._directories_by_depth[depth] = candidates
            if candidates:
                quotas = self._model.directory_file_count.sample(self._rng, len(candidates))
                self._quotas[depth] = np.asarray(quotas, dtype=float) + 1.0
        return self._directories_by_depth[depth]

    # Full placement -----------------------------------------------------------

    def place(self, file_size: int) -> DirectoryNode:
        """Choose the directory that will contain a new file of ``file_size``.

        Special directories are considered first: with probability equal to
        its configured bias, a file is routed directly to that special
        directory regardless of the depth model.
        """
        special = self._maybe_special()
        if special is not None:
            return special
        depth = self.choose_depth(file_size)
        return self.choose_parent(depth)

    def _maybe_special(self) -> DirectoryNode | None:
        if not self._special_specs:
            return None
        draw = self._rng.random()
        cumulative = 0.0
        for name, spec in self._special_specs.items():
            cumulative += spec.file_bias
            if draw < cumulative:
                return self._special_nodes[name]
        return None
