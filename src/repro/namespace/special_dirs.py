"""Special directories (Section 3.3.2, Figure 2(h)).

Real file systems contain a few directories holding a disproportionate number
of files — the paper's example is a typical Windows system with a web cache at
depth 7, ``Windows`` and ``Program Files`` at depth 2 and ``System`` files at
depth 3.  Impressions supports giving such directories a selection bias during
parent-directory assignment.

A :class:`SpecialDirectorySpec` names the directory, the depth it should live
at, and the fraction of all files that should be biased toward it.  The
default set mirrors the paper's example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.namespace.tree import DirectoryNode, FileSystemTree

__all__ = [
    "SpecialDirectorySpec",
    "DEFAULT_SPECIAL_DIRECTORIES",
    "install_special_directories",
]


@dataclass(frozen=True)
class SpecialDirectorySpec:
    """Description of one special directory.

    Attributes:
        name: directory name to create (or find) in the namespace.
        depth: target namespace depth of the directory itself.
        file_bias: fraction of all files that should be routed to this
            directory (the "conditional probability" of Table 2).
    """

    name: str
    depth: int
    file_bias: float

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("special directory depth must be at least 1")
        if not 0.0 < self.file_bias < 1.0:
            raise ValueError("file_bias must lie in (0, 1)")


#: The paper's illustrative Windows layout: web cache at depth 7, Windows and
#: Program Files at depth 2, System files at depth 3.
DEFAULT_SPECIAL_DIRECTORIES: tuple[SpecialDirectorySpec, ...] = (
    SpecialDirectorySpec(name="Windows", depth=2, file_bias=0.06),
    SpecialDirectorySpec(name="Program Files", depth=2, file_bias=0.08),
    SpecialDirectorySpec(name="System", depth=3, file_bias=0.05),
    SpecialDirectorySpec(name="Web Cache", depth=7, file_bias=0.07),
)


def install_special_directories(
    tree: FileSystemTree,
    specs: tuple[SpecialDirectorySpec, ...] | list[SpecialDirectorySpec],
    rng: np.random.Generator,
) -> dict[str, DirectoryNode]:
    """Ensure every special directory exists at its requested depth.

    For each spec we pick a random existing directory at ``depth - 1`` as the
    parent (creating a chain of intermediate directories from the deepest
    available ancestor when the tree is too shallow) and create the special
    directory beneath it.  Returns a mapping from spec name to the created (or
    reused) node, with ``special_label`` set on the node.
    """
    created: dict[str, DirectoryNode] = {}
    for spec in specs:
        existing = _find_named(tree, spec.name, spec.depth)
        if existing is not None:
            existing.special_label = spec.name
            created[spec.name] = existing
            continue
        parent = _directory_at_depth(tree, spec.depth - 1, rng)
        node = tree.create_directory(parent, name=spec.name)
        node.special_label = spec.name
        created[spec.name] = node
    return created


def _find_named(tree: FileSystemTree, name: str, depth: int) -> DirectoryNode | None:
    for directory in tree.directories:
        if directory.name == name and directory.depth == depth:
            return directory
    return None


def _directory_at_depth(
    tree: FileSystemTree, depth: int, rng: np.random.Generator
) -> DirectoryNode:
    """A random directory at exactly ``depth``, extending the tree if needed."""
    if depth <= 0:
        return tree.root
    candidates = tree.directories_at_depth(depth)
    if candidates:
        return candidates[int(rng.integers(len(candidates)))]
    # The tree is too shallow: extend a chain from the deepest directory that
    # exists toward the requested depth.
    deepest_depth = min(depth - 1, tree.max_depth())
    parent = _directory_at_depth(tree, deepest_depth, rng)
    current = parent
    while current.depth < depth:
        current = tree.create_directory(current)
    return current
