"""Generative directory-tree model (Agrawal et al., used in Section 3.3.1).

New directories are added to the namespace one at a time; the probability of
choosing an extant directory ``d`` as the parent is proportional to
``C(d) + 2`` where ``C(d)`` is the number of subdirectories ``d`` currently
has.  This single rule reproduces both the distribution of directories by
depth and the distribution of directories by subdirectory count observed in
the Windows dataset.

The module also provides the deterministic *flat* and *deep* trees the paper
uses in Figure 1 to show the impact of tree shape on ``find``.
"""

from __future__ import annotations

import numpy as np

from repro.namespace.tree import DirectoryNode, FileSystemTree
from repro.stats.montecarlo import DynamicWeightedSampler

__all__ = ["GenerativeTreeModel", "build_flat_tree", "build_deep_tree"]


class GenerativeTreeModel:
    """Monte-Carlo namespace generator.

    Args:
        attachment_offset: the additive constant in ``C(d) + offset``; the
            paper (and the original study) use 2.
    """

    def __init__(self, attachment_offset: float = 2.0) -> None:
        if attachment_offset <= 0:
            raise ValueError("attachment_offset must be positive")
        self._offset = attachment_offset

    @property
    def attachment_offset(self) -> float:
        return self._offset

    def generate(self, num_directories: int, rng: np.random.Generator) -> FileSystemTree:
        """Create a new tree containing ``num_directories`` directories.

        The count includes the root, so ``num_directories=1`` is just the
        root; directory names are generated with a simple iterative counter,
        matching the paper.
        """
        if num_directories < 1:
            raise ValueError("num_directories must be at least 1 (the root)")
        tree = FileSystemTree()
        self.grow(tree, num_directories - 1, rng)
        return tree

    def grow(self, tree: FileSystemTree, additional_directories: int, rng: np.random.Generator) -> None:
        """Add ``additional_directories`` new directories to an existing tree."""
        if additional_directories < 0:
            raise ValueError("additional_directories must be non-negative")
        if additional_directories == 0:
            return

        directories: list[DirectoryNode] = tree.directories
        sampler = DynamicWeightedSampler(
            initial_weights=[directory.subdirectory_count + self._offset for directory in directories],
            capacity=len(directories) + additional_directories,
        )

        for _ in range(additional_directories):
            parent_index = sampler.sample(rng)
            parent = directories[parent_index]
            child = tree.create_directory(parent)
            directories.append(child)
            # The parent gained one subdirectory: its attachment weight grows
            # by 1; the new child starts at C(d)=0, i.e. weight = offset.
            sampler.increment(parent_index, 1.0)
            sampler.add(self._offset)


def build_flat_tree(num_directories: int) -> FileSystemTree:
    """Tree with every non-root directory directly under the root (Figure 1).

    The paper's "flat tree" puts all 100 directories at depth 1.
    """
    if num_directories < 1:
        raise ValueError("num_directories must be at least 1")
    tree = FileSystemTree()
    for _ in range(num_directories - 1):
        tree.create_directory(tree.root)
    return tree


def build_deep_tree(num_directories: int) -> FileSystemTree:
    """Tree with directories successively nested into a chain (Figure 1).

    The paper's "deep tree" nests directories to a depth of 100.
    """
    if num_directories < 1:
        raise ValueError("num_directories must be at least 1")
    tree = FileSystemTree()
    current = tree.root
    for _ in range(num_directories - 1):
        current = tree.create_directory(current)
    return tree
