"""repro — a reproduction of Impressions (FAST '09).

Impressions generates statistically accurate file-system images — directory
trees, file metadata and file content — from parameterised empirical
distributions, so that file-system and application benchmarks can run against
realistic, reproducible state.

Beyond static images, :mod:`repro.trace` supplies the dynamic side of
benchmarking: synthetic operation traces (metadata storms, Zipf access mixes,
create/delete churn), a replay engine with a disk cost model, and
trace-driven aging to a target layout score.  :mod:`repro.materialize`
exports images through pluggable sinks — parallel directory writes,
deterministic tar archives, JSONL manifests, digest-only verification —
with round-trip distribution checks against the generating config.

The top-level package re-exports the most frequently used entry points so that
a quickstart is just::

    from repro import Impressions, ImpressionsConfig

    image = Impressions(ImpressionsConfig(num_files=2000, seed=42)).generate()
    print(image.summary())

Generation runs on a composable staged pipeline (:mod:`repro.pipeline`);
``Impressions`` is the stable facade over its default six-stage sequence.
Callers that want stage subsets, per-stage progress, or the content-addressed
stage cache use the pipeline API::

    from repro import StageCache, default_pipeline

    result = default_pipeline().run(config, cache=StageCache(".stage-cache"))
    image = result.image
"""

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions
from repro.materialize import (
    DirectorySink,
    ManifestSink,
    NullSink,
    TarSink,
    materialize_image,
)
from repro.pipeline import Pipeline, StageCache, default_pipeline

__all__ = [
    "DirectorySink",
    "Impressions",
    "ImpressionsConfig",
    "FileSystemImage",
    "ManifestSink",
    "NullSink",
    "Pipeline",
    "StageCache",
    "TarSink",
    "default_pipeline",
    "materialize_image",
    "__version__",
]

__version__ = "1.0.0"
