"""repro — a reproduction of Impressions (FAST '09).

Impressions generates statistically accurate file-system images — directory
trees, file metadata and file content — from parameterised empirical
distributions, so that file-system and application benchmarks can run against
realistic, reproducible state.

Beyond static images, :mod:`repro.trace` supplies the dynamic side of
benchmarking: synthetic operation traces (metadata storms, Zipf access mixes,
create/delete churn), a replay engine with a disk cost model, and
trace-driven aging to a target layout score.

The top-level package re-exports the most frequently used entry points so that
a quickstart is just::

    from repro import Impressions, ImpressionsConfig

    image = Impressions(ImpressionsConfig(num_files=2000, seed=42)).generate()
    print(image.summary())
"""

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions

__all__ = [
    "Impressions",
    "ImpressionsConfig",
    "FileSystemImage",
    "__version__",
]

__version__ = "1.0.0"
