"""repro.shard — deterministic sharded image generation.

Splits one :class:`~repro.core.config.ImpressionsConfig` into N independent
shard configs (:mod:`~repro.shard.plan`), generates each shard through the
ordinary pipeline — optionally in parallel worker processes
(:mod:`~repro.shard.worker`) — and folds the shard images back into one
:class:`~repro.core.image.FileSystemImage` (:mod:`~repro.shard.merge`) whose
fingerprint and content digest are identical whether one process or many did
the work.

    from repro.shard import generate_sharded

    result = generate_sharded(config, num_shards=4, jobs=4)
    result.image            # the merged FileSystemImage
    result.fingerprint      # == the jobs=1 fingerprint for the same plan

CLI: ``impressions shard plan|generate|verify``.
"""

from repro.shard.merge import (
    ShardMergeError,
    image_content_digests,
    manifest_content_digests,
    merge_shards,
)
from repro.shard.plan import (
    SHARD_PLAN_FORMAT,
    ShardPlan,
    ShardPlanError,
    ShardSpec,
    build_plan,
)
from repro.shard.worker import (
    ShardResult,
    ShardedGenerationResult,
    generate_sharded,
    run_shard,
    shard_cache_slice,
)

__all__ = [
    "SHARD_PLAN_FORMAT",
    "ShardMergeError",
    "ShardPlan",
    "ShardPlanError",
    "ShardResult",
    "ShardSpec",
    "ShardedGenerationResult",
    "build_plan",
    "generate_sharded",
    "image_content_digests",
    "manifest_content_digests",
    "merge_shards",
    "run_shard",
    "shard_cache_slice",
]
