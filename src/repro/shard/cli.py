"""CLI for sharded generation: ``impressions shard plan|generate|verify``.

Examples::

    # Inspect / store the deterministic partition.
    impressions shard plan --files 52000 --dirs 4000 --shards 8 --out plan.json

    # Generate through 4 worker processes; identical to --jobs 1.
    impressions shard generate --files 52000 --dirs 4000 --shards 8 --jobs 4

    # Execute a stored plan, with per-shard stage-cache slices.
    impressions shard generate --plan plan.json --jobs 4 --cache-dir ~/.cache/imp

    # Prove it: run jobs=1 and jobs=N, diff fingerprint + content digest.
    impressions shard verify --files 2000 --shards 4 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.shard.plan import ShardPlan, ShardPlanError, build_plan

__all__ = ["main", "build_parser"]


def _add_plan_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.core.cli import add_config_arguments

    add_config_arguments(parser)
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        metavar="N",
        help="number of shards to split the image into (default: %(default)s)",
    )
    parser.add_argument(
        "--plan",
        metavar="PATH",
        default=None,
        help="execute a stored plan JSON instead of planning from the config flags",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions shard",
        description="Deterministic sharded image generation with parallel workers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan_parser = sub.add_parser(
        "plan", help="compute the shard partition and print or store it as JSON"
    )
    _add_plan_arguments(plan_parser)
    plan_parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the plan JSON here instead of stdout"
    )

    generate_parser = sub.add_parser(
        "generate", help="generate the image in shards and merge the result"
    )
    _add_plan_arguments(generate_parser)
    generate_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default: %(default)s; 1 = in-process)",
    )
    generate_parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="stage-cache root; every shard caches under its own slice",
    )
    generate_parser.add_argument(
        "--no-digest", action="store_true",
        help="skip the merged materialize content digest",
    )
    generate_parser.add_argument(
        "--obs-dir", metavar="PATH", default=None,
        help="export the run's telemetry (merged across shard processes) to this directory",
    )
    generate_parser.add_argument(
        "--json", action="store_true", help="print a machine-readable summary"
    )
    generate_parser.add_argument(
        "--quiet", action="store_true", help="only print the result line"
    )

    verify_parser = sub.add_parser(
        "verify",
        help="run jobs=1 and jobs=N for one plan and diff fingerprint + content digest",
    )
    _add_plan_arguments(verify_parser)
    verify_parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="parallel worker count to compare against jobs=1 (default: %(default)s)",
    )
    verify_parser.add_argument(
        "--json", action="store_true", help="print a machine-readable verdict"
    )
    return parser


def _resolve_plan(args: argparse.Namespace, parser: argparse.ArgumentParser) -> ShardPlan:
    from repro.core.cli import config_from_args

    try:
        if args.plan is not None:
            with open(args.plan, encoding="utf-8") as handle:
                return ShardPlan.from_json(handle.read())
        return build_plan(config_from_args(args), args.shards)
    except OSError as error:
        parser.error(f"cannot read plan: {error}")
    except (ShardPlanError, ValueError) as error:
        parser.error(str(error))
    raise AssertionError("unreachable")  # pragma: no cover - parser.error raises


def _cmd_plan(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    plan = _resolve_plan(args, parser)
    try:
        text = plan.to_json()
    except ShardPlanError as error:
        parser.error(str(error))
        return 2  # pragma: no cover
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"plan: {plan.num_shards} shards -> {args.out} ({plan.fingerprint()[:12]})")
    else:
        print(text)
    return 0


def _cmd_generate(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.core.cli import obs_use_scope
    from repro.shard.worker import generate_sharded

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    plan = _resolve_plan(args, parser)

    telemetry = None
    if args.obs_dir:
        from repro import obs

        telemetry = obs.Telemetry(run_id=f"shard-{plan.fingerprint()[:12]}")

    progress = None if (args.quiet or args.json) else lambda line: print(f"  {line}")
    with obs_use_scope(telemetry):
        result = generate_sharded(
            plan=plan,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            digest=not args.no_digest,
            telemetry=telemetry,
            progress=progress,
        )

    obs_paths = None
    if telemetry is not None:
        from repro import obs

        if result.image.report is not None:
            result.image.report.record_telemetry(obs.summary_dict(telemetry))
        obs_paths = obs.save(telemetry, args.obs_dir)

    if args.json:
        payload = result.as_dict()
        if obs_paths:
            payload["obs"] = obs_paths
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    image = result.image
    digest_part = (
        f" digest {result.content_digest[:12]}" if result.content_digest else ""
    )
    print(
        f"generated {image.file_count} files / {image.directory_count} dirs in "
        f"{result.plan.num_shards} shards (jobs={result.jobs}): "
        f"fingerprint {result.fingerprint[:12]}{digest_part}"
    )
    if not args.quiet:
        walls = ", ".join(f"{wall:.3f}s" for wall in result.shard_walls)
        print(f"  shard walls: [{walls}]")
        for name, seconds in result.timings.items():
            print(f"  {name}: {seconds:.3f}s")
        if obs_paths:
            for kind, path in obs_paths.items():
                print(f"  obs {kind}: {path}")
    return 0


def _cmd_verify(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.shard.worker import generate_sharded

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    plan = _resolve_plan(args, parser)
    serial = generate_sharded(plan=plan, jobs=1)
    parallel = generate_sharded(plan=plan, jobs=args.jobs)
    fingerprint_ok = serial.fingerprint == parallel.fingerprint
    digest_ok = serial.content_digest == parallel.content_digest
    passed = fingerprint_ok and digest_ok
    if args.json:
        print(
            json.dumps(
                {
                    "plan_fingerprint": plan.fingerprint(),
                    "num_shards": plan.num_shards,
                    "jobs": args.jobs,
                    "passed": passed,
                    "fingerprint_match": fingerprint_ok,
                    "content_digest_match": digest_ok,
                    "fingerprint": {"serial": serial.fingerprint, "parallel": parallel.fingerprint},
                    "content_digest": {
                        "serial": serial.content_digest,
                        "parallel": parallel.content_digest,
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"plan {plan.fingerprint()[:12]}: jobs=1 vs jobs={args.jobs}")
        print(
            f"  fingerprint:    {'match' if fingerprint_ok else 'MISMATCH'} "
            f"({serial.fingerprint[:12]} / {parallel.fingerprint[:12]})"
        )
        serial_digest = (serial.content_digest or "-")[:12]
        parallel_digest = (parallel.content_digest or "-")[:12]
        print(
            f"  content digest: {'match' if digest_ok else 'MISMATCH'} "
            f"({serial_digest} / {parallel_digest})"
        )
        print("verification PASSED" if passed else "verification FAILED")
    return 0 if passed else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "plan":
        return _cmd_plan(args, parser)
    if args.command == "generate":
        return _cmd_generate(args, parser)
    if args.command == "verify":
        return _cmd_verify(args, parser)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
