"""Shard workers and the sharded-generation driver.

:func:`run_shard` is a module-level function of a plain payload dict so it
pickles cleanly into a :class:`concurrent.futures.ProcessPoolExecutor` (the
campaign runner's worker pattern).  Each worker runs the ordinary six-stage
pipeline for one shard config, under its own stage-cache *slice*
(``<cache_dir>/shard-0000``) and its own :class:`repro.obs.Telemetry`; the
picklable telemetry snapshot rides back to the parent, which merges it with
a ``shard=<index>`` label so per-shard series stay distinguishable.

:func:`generate_sharded` is the driver: plan → fan out → merge → digest.
``jobs=1`` runs the shards in-process in index order; ``jobs=N`` fans them
out across processes.  Either way the shard *results* are consumed in index
order and the merge is a pure function of the plan, so the merged image —
its :func:`~repro.pipeline.runner.image_fingerprint` and its materialize
content digest — is bit-identical across worker counts.
"""

from __future__ import annotations

import contextlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.obs import core as obs_core
from repro.pipeline.cache import StageCache, cache_lock
from repro.pipeline.runner import default_pipeline, image_fingerprint
from repro.shard.plan import ShardPlan, build_plan

__all__ = [
    "run_shard",
    "generate_sharded",
    "ShardResult",
    "ShardedGenerationResult",
    "shard_cache_slice",
]


def shard_cache_slice(cache_dir: str, index: int) -> str:
    """The per-shard stage-cache directory under a shared cache root.

    Each worker gets its own slice so concurrent shards never contend on one
    directory; entries are still content-addressed, so slices of equal shard
    configs deduplicate across runs of the same plan.
    """
    return os.path.join(cache_dir, f"shard-{index:04d}")


def run_shard(payload: dict) -> dict:
    """Generate one shard image (worker entry point; runs in a child process).

    Payload keys: ``index`` (shard number), ``config`` (the shard's
    :class:`~repro.core.config.ImpressionsConfig`), optional ``cache_dir``
    (this shard's cache *slice*, already per-shard), optional ``telemetry``
    (bool).  Returns a dict with the generated image, its fingerprint
    (computed in the worker, pre-pickle), wall seconds, the cache summary and
    the telemetry snapshot.
    """
    index = int(payload["index"])
    config: ImpressionsConfig = payload["config"]
    cache_dir = payload.get("cache_dir")
    tele = (
        obs_core.Telemetry(run_id=f"shard-{index:04d}")
        if payload.get("telemetry")
        else None
    )
    scope = obs_core.use(tele) if tele is not None else contextlib.nullcontext()
    with scope:
        span = (
            tele.span("shard_generate", shard=index)
            if tele is not None
            else contextlib.nullcontext()
        )
        start = time.perf_counter()
        with span:
            # Slices are per-shard already; two concurrent runs of the same
            # plan may still share one, which is benign (atomic writes), so
            # take the cache lock in ignore mode rather than failing.
            lock = (
                cache_lock(cache_dir, owner=f"shard-{index:04d}", on_busy="ignore")
                if cache_dir
                else contextlib.nullcontext()
            )
            with lock:
                cache = StageCache(cache_dir) if cache_dir else None
                result = default_pipeline().run(config, cache=cache)
        wall = time.perf_counter() - start
        image = result.image
        if tele is not None:
            tele.counter(
                "shard_files_total", "files generated per shard", labels=("shard",)
            ).inc(image.file_count, shard=str(index))
            tele.counter(
                "shard_bytes_total", "logical bytes generated per shard", labels=("shard",)
            ).inc(image.total_bytes, shard=str(index))
    return {
        "index": index,
        "image": image,
        "fingerprint": image_fingerprint(image),
        "wall_seconds": wall,
        "cache": result.cache_summary() if cache_dir else None,
        "telemetry": tele.snapshot() if tele is not None else None,
    }


@dataclass
class ShardResult:
    """One shard's outcome as seen by the driver."""

    index: int
    files: int
    directories: int
    total_bytes: int
    fingerprint: str
    wall_seconds: float
    cache: dict | None = None

    def as_dict(self) -> dict:
        out = {
            "index": self.index,
            "files": self.files,
            "directories": self.directories,
            "total_bytes": self.total_bytes,
            "fingerprint": self.fingerprint,
            "wall_seconds": self.wall_seconds,
        }
        if self.cache is not None:
            out["cache"] = dict(self.cache)
        return out


@dataclass
class ShardedGenerationResult:
    """Everything one :func:`generate_sharded` call produced.

    ``fingerprint`` and ``content_digest`` are the determinism contract:
    both are pure functions of the plan, so ``jobs=1`` and ``jobs=N`` runs
    of one plan report identical values.
    """

    image: FileSystemImage
    plan: ShardPlan
    shards: list[ShardResult]
    fingerprint: str
    content_digest: str | None
    jobs: int
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def shard_walls(self) -> list[float]:
        return [shard.wall_seconds for shard in self.shards]

    def as_dict(self) -> dict:
        return {
            "plan_fingerprint": self.plan.fingerprint(),
            "num_shards": self.plan.num_shards,
            "jobs": self.jobs,
            "fingerprint": self.fingerprint,
            "content_digest": self.content_digest,
            "shards": [shard.as_dict() for shard in self.shards],
            "timings": dict(self.timings),
            "summary": self.image.summary(),
        }


def generate_sharded(
    config: ImpressionsConfig | None = None,
    num_shards: int = 4,
    jobs: int = 1,
    *,
    plan: ShardPlan | None = None,
    cache_dir: str | None = None,
    digest: bool = True,
    telemetry: "obs_core.Telemetry | None" = None,
    progress: Callable[[str], None] | None = None,
) -> ShardedGenerationResult:
    """Generate ``config``'s image in shards and merge the result.

    Args:
        config: the master configuration (ignored when ``plan`` is given).
        num_shards: how many shards to plan (ignored when ``plan`` is given).
        jobs: worker processes; ``1`` runs shards in-process, sequentially.
        plan: a pre-built :class:`~repro.shard.plan.ShardPlan` to execute.
        cache_dir: shared stage-cache root; each shard caches under its own
            slice (:func:`shard_cache_slice`), so a re-run of the same plan
            restores every shard instead of regenerating.
        digest: also compute the merged image's order-independent materialize
            content digest (a digest-only :class:`~repro.materialize.NullSink`
            pass; cheap for metadata-only images, full content generation for
            content images).  ``content_digest`` is None when disabled.
        telemetry: optional :class:`repro.obs.Telemetry` (defaults to the
            context-bound one).  Worker snapshots merge back with a
            ``shard=<index>`` label; the plan / fan-out / merge phases become
            spans.
        progress: optional callback receiving one line per shard completed.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    tele = telemetry if telemetry is not None else obs_core.current()
    timings: dict[str, float] = {}

    def span(name: str, **labels):
        if tele is None:
            return contextlib.nullcontext()
        return tele.span(name, **labels)

    start = time.perf_counter()
    with span("shard_plan"):
        if plan is None:
            if config is None:
                raise ValueError("generate_sharded needs a config or a plan")
            plan = build_plan(config, num_shards)
    timings["plan_seconds"] = time.perf_counter() - start

    payloads = [
        {
            "index": spec.index,
            "config": plan.shard_config(spec),
            "cache_dir": shard_cache_slice(cache_dir, spec.index) if cache_dir else None,
            "telemetry": tele is not None,
        }
        for spec in plan.shards
    ]

    start = time.perf_counter()
    workers = min(jobs, len(payloads))
    with span("shard_fanout", shards=str(len(payloads)), jobs=str(workers)):
        if workers == 1:
            rows = [run_shard(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                rows = list(pool.map(run_shard, payloads))
    timings["generate_seconds"] = time.perf_counter() - start

    shards: list[ShardResult] = []
    images: list[FileSystemImage] = []
    for row in rows:
        image = row["image"]
        images.append(image)
        shards.append(
            ShardResult(
                index=row["index"],
                files=image.file_count,
                directories=image.directory_count,
                total_bytes=image.total_bytes,
                fingerprint=row["fingerprint"],
                wall_seconds=row["wall_seconds"],
                cache=row["cache"],
            )
        )
        if tele is not None and row["telemetry"] is not None:
            tele.merge(row["telemetry"], extra_labels={"shard": row["index"]})
        if progress:
            progress(
                f"shard {row['index']:>3}: {image.file_count} files in "
                f"{row['wall_seconds']:.3f}s ({row['fingerprint'][:12]})"
            )

    from repro.shard.merge import merge_shards

    start = time.perf_counter()
    with span("shard_merge", shards=str(len(images))):
        merged = merge_shards(plan, images, shard_fingerprints=[s.fingerprint for s in shards])
    timings["merge_seconds"] = time.perf_counter() - start

    start = time.perf_counter()
    content_digest: str | None = None
    if digest:
        from repro.materialize import NullSink, materialize_image

        with span("shard_digest"):
            content_digest = materialize_image(merged, NullSink()).content_digest
    timings["digest_seconds"] = time.perf_counter() - start

    fingerprint = image_fingerprint(merged)
    if progress:
        progress(f"merged: {merged.file_count} files ({fingerprint[:12]})")
    return ShardedGenerationResult(
        image=merged,
        plan=plan,
        shards=shards,
        fingerprint=fingerprint,
        content_digest=content_digest,
        jobs=jobs,
        timings=timings,
    )
