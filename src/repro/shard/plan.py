"""Deterministic shard planning: split one image config into N shard configs.

A :class:`ShardPlan` partitions the namespace *before* any parallelism
exists: the master config's file count, directory count and target size are
apportioned across ``num_shards`` independent sub-configurations, each with
its own derived seed.  Every shard then generates a complete (smaller) image
through the ordinary six-stage pipeline, and the merger
(:mod:`repro.shard.merge`) grafts the shard trees under one root — the
"top-level directory split": each shard's root becomes an anonymous slice of
the merged root's children.

Because the plan is a pure function of ``(master config, num_shards)`` and
each shard is a pure function of its spec, the merged image is identical no
matter how many worker processes ran the shards — the property the
determinism suite and ``impressions shard verify`` pin.

Apportionment uses the largest-remainder method with lower-index
tie-breaking, so the shard sums are *exact*: files sum to the master file
count, directories to the master directory count (counting each shard's
discarded root once), bytes to the master target size.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.config import ImpressionsConfig

__all__ = ["ShardPlanError", "ShardSpec", "ShardPlan", "build_plan", "SHARD_PLAN_FORMAT"]

#: Bumped when the plan recipe (seed derivation, apportionment) changes
#: incompatibly, so stored plan JSON never silently means something else.
SHARD_PLAN_FORMAT = 1


class ShardPlanError(ValueError):
    """Raised when a config cannot be sharded as requested."""


def _derive_seed(master_seed: int, num_shards: int, index: int) -> int:
    """Deterministic per-shard seed, decorrelated from the master stream."""
    token = f"impressions-shard:{master_seed}:{num_shards}:{index}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # keep it a positive int64


def _apportion(total: int, weights: list[int], minimum: int = 0) -> list[int]:
    """Split ``total`` into ``len(weights)`` integer shares ∝ ``weights``.

    Largest-remainder method with deterministic tie-breaking (larger
    fractional part first, then lower index).  Shares sum to ``total``
    exactly.  ``minimum`` enforces a floor per share; the caller must ensure
    ``total >= minimum * len(weights)``.
    """
    count = len(weights)
    weight_sum = sum(weights)
    if weight_sum <= 0:
        weights = [1] * count
        weight_sum = count
    assert total >= minimum * count
    spendable = total - minimum * count
    raw = [spendable * weight / weight_sum for weight in weights]
    shares = [int(value) for value in raw]
    remainder = spendable - sum(shares)
    order = sorted(range(count), key=lambda i: (-(raw[i] - shares[i]), i))
    for i in order[:remainder]:
        shares[i] += 1
    return [share + minimum for share in shares]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the master configuration.

    Attributes:
        index: shard number in ``[0, num_shards)``; also the merge order.
        seed: derived seed for the shard's own rng stream.
        num_files: files this shard generates (≥ 1).
        num_directories: directories including the shard's own root, which
            the merger discards — so the merged directory count is
            ``1 + Σ (num_directories - 1)``.
        fs_size_bytes: the shard's slice of the master target size, or None
            when the master left the size derived.
        disk_capacity_bytes: the shard's slice of a pinned disk capacity, or
            None for the default capacity rule.
    """

    index: int
    seed: int
    num_files: int
    num_directories: int
    fs_size_bytes: int | None
    disk_capacity_bytes: int | None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "seed": self.seed,
            "num_files": self.num_files,
            "num_directories": self.num_directories,
            "fs_size_bytes": self.fs_size_bytes,
            "disk_capacity_bytes": self.disk_capacity_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardSpec":
        return cls(
            index=int(data["index"]),
            seed=int(data["seed"]),
            num_files=int(data["num_files"]),
            num_directories=int(data["num_directories"]),
            fs_size_bytes=None if data.get("fs_size_bytes") is None else int(data["fs_size_bytes"]),
            disk_capacity_bytes=(
                None
                if data.get("disk_capacity_bytes") is None
                else int(data["disk_capacity_bytes"])
            ),
        )


class ShardPlan:
    """The full partition: master config plus one :class:`ShardSpec` per shard."""

    def __init__(self, master: ImpressionsConfig, shards: list[ShardSpec]) -> None:
        if not shards:
            raise ShardPlanError("a shard plan needs at least one shard")
        self.master = master
        self.shards = list(shards)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_config(self, spec: ShardSpec) -> ImpressionsConfig:
        """The complete pipeline config for one shard.

        Special-directory biases apply to shard 0 only, so the merged image
        carries exactly one set of special directories (the master's), not
        ``num_shards`` colliding copies.
        """
        return self.master.with_overrides(
            seed=spec.seed,
            num_files=spec.num_files,
            num_directories=spec.num_directories,
            fs_size_bytes=spec.fs_size_bytes,
            disk_capacity_bytes=spec.disk_capacity_bytes,
            special_directories=(
                tuple(self.master.special_directories) if spec.index == 0 else ()
            ),
        )

    def configs(self) -> list[ImpressionsConfig]:
        return [self.shard_config(spec) for spec in self.shards]

    def fingerprint(self) -> str:
        """SHA-256 identity of the plan (master knobs + every shard spec)."""
        document = {
            "format": SHARD_PLAN_FORMAT,
            "master": self.master.to_knobs(),
            "shards": [spec.as_dict() for spec in self.shards],
        }
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict:
        return {
            "format": SHARD_PLAN_FORMAT,
            "kind": "impressions-shard-plan",
            "master_knobs": self.master.to_knobs(),
            "num_shards": self.num_shards,
            "shards": [spec.as_dict() for spec in self.shards],
            "fingerprint": self.fingerprint(),
        }

    def to_json(self) -> str:
        from repro.pipeline.cache import config_cache_safe

        if not config_cache_safe(self.master):
            raise ShardPlanError(
                "this master config carries model overrides outside its knob "
                "view and cannot round-trip through plan JSON; shard it via "
                "the API (repro.shard.generate_sharded) instead"
            )
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        if data.get("kind") != "impressions-shard-plan":
            raise ShardPlanError("not a shard plan document")
        if int(data.get("format", -1)) != SHARD_PLAN_FORMAT:
            raise ShardPlanError(
                f"unsupported shard plan format {data.get('format')!r} "
                f"(this build reads format {SHARD_PLAN_FORMAT})"
            )
        master = ImpressionsConfig.from_knobs(data["master_knobs"])
        shards = [ShardSpec.from_dict(row) for row in data["shards"]]
        plan = cls(master, shards)
        recorded = data.get("fingerprint")
        if recorded is not None and recorded != plan.fingerprint():
            raise ShardPlanError(
                "shard plan fingerprint mismatch: the document was edited or "
                "produced by an incompatible build"
            )
        return plan

    @classmethod
    def from_json(cls, text: str) -> "ShardPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ShardPlanError(f"invalid shard plan JSON: {error}") from error
        if not isinstance(data, dict):
            raise ShardPlanError("shard plan JSON must be an object")
        return cls.from_dict(data)


def build_plan(config: ImpressionsConfig, num_shards: int) -> ShardPlan:
    """Partition ``config`` into ``num_shards`` deterministic shard specs.

    Raises :class:`ShardPlanError` when the config cannot be sharded: fewer
    files than shards, a target size too small to slice, or a timestamp model
    without a pinned ``timestamp_now`` (each shard would stamp its own wall
    clock and the runs would stop being comparable).
    """
    if num_shards < 1:
        raise ShardPlanError("num_shards must be at least 1")
    total_files = config.resolved_num_files()
    total_dirs = config.resolved_num_directories()
    if num_shards > total_files:
        raise ShardPlanError(
            f"cannot split {total_files} files across {num_shards} shards; "
            "every shard needs at least one file"
        )
    if config.timestamp_model is not None and config.timestamp_now is None:
        raise ShardPlanError(
            "sharding a timestamped config requires pinning timestamp_now; "
            "each shard would otherwise stamp its own wall clock and "
            "jobs=1 / jobs=N runs would diverge"
        )

    files = _apportion(total_files, [1] * num_shards, minimum=1)
    # Each shard's root is discarded at merge, so the merged directory count
    # is 1 (the merged root) + Σ (shard dirs - 1).  Apportioning the master's
    # non-root directories and giving each shard its root back makes that sum
    # land exactly on the master count.
    dirs = [share + 1 for share in _apportion(total_dirs - 1, files, minimum=0)]

    sizes: list[int | None] = [None] * num_shards
    if config.fs_size_bytes is not None:
        if config.fs_size_bytes < num_shards:
            raise ShardPlanError(
                f"fs_size_bytes={config.fs_size_bytes} is too small to split "
                f"across {num_shards} shards"
            )
        sizes = list(_apportion(config.fs_size_bytes, files, minimum=1))

    capacities: list[int | None] = [None] * num_shards
    if config.disk_capacity_bytes is not None:
        block = config.block_size
        if config.disk_capacity_bytes < num_shards * block:
            raise ShardPlanError(
                f"disk_capacity_bytes={config.disk_capacity_bytes} is too small "
                f"to split across {num_shards} shards"
            )
        capacities = list(
            _apportion(config.disk_capacity_bytes, files, minimum=block)
        )

    shards = [
        ShardSpec(
            index=index,
            seed=_derive_seed(config.seed, num_shards, index),
            num_files=files[index],
            num_directories=dirs[index],
            fs_size_bytes=sizes[index],
            disk_capacity_bytes=capacities[index],
        )
        for index in range(num_shards)
    ]
    return ShardPlan(config, shards)
