"""Fold per-shard images into one merged :class:`FileSystemImage`.

The merge is the deterministic half of the sharding contract.  Given the
plan and the shard images **in shard-index order**, it:

* grafts each shard root's children (files and directory subtrees) under one
  merged root, renaming a top-level entry only when its name collides with
  one adopted earlier (``s<shard>-<name>``) — deeper paths never collide
  because each sibling set comes from a single shard;
* re-numbers every file with a merged ``file_id`` while pinning its
  :attr:`~repro.namespace.tree.FileNode.content_key`, so a content file's
  bytes are identical before and after the merge;
* concatenates the shard disks into one address space: shard *i*'s extents
  are shifted by the prefix sum of the earlier shards' block counts and
  adopted verbatim (:meth:`~repro.layout.disk.SimulatedDisk.adopt_extents`),
  so per-file fragmentation — and therefore the merged layout score, still an
  O(1) aggregate read — is preserved exactly;
* assembles a merged reproducibility report (master parameters, exact merged
  counts, the plan and per-shard fingerprints) and per-phase timings (the
  max over shards: the parallel critical path).

Everything is a pure function of ``(plan, shard images)``; since each shard
image is a pure function of its spec, the merged image is identical no
matter how many processes generated the shards.

Shard-local state that cannot mean anything in the merged address space is
dropped: simulated-disk allocations not owned by the shard's tree (e.g.
fragmenter leftovers) stay behind, and each shard's root directory itself is
discarded (the plan accounts for this in its directory apportionment).

:func:`image_content_digests` / :func:`manifest_content_digests` close the
loop with :mod:`repro.materialize`: a manifest written with
``digest_content=True`` carries per-file content hashes that are
*path-independent*, so the multiset over all shard manifests must equal the
multiset over the merged image — the cross-check ``impressions shard
verify --content`` and the merge test suite use.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.image import FileSystemImage
from repro.core.impressions import GenerationTimings
from repro.core.report import ReproducibilityReport
from repro.layout.disk import SimulatedDisk
from repro.namespace.tree import FileSystemTree
from repro.shard.plan import ShardPlan

__all__ = [
    "ShardMergeError",
    "merge_shards",
    "image_content_digests",
    "manifest_content_digests",
]


class ShardMergeError(RuntimeError):
    """Raised when shard images cannot be merged into one."""


def _derive_content_seed(plan: ShardPlan) -> int:
    """Deterministic content seed for the *merged* image.

    Adopted files never use it (their :attr:`content_key` pins the shard pair
    they were generated under); it only seeds files added to the merged image
    later (trace replay, aging).
    """
    token = f"impressions-shard-merged:{plan.fingerprint()}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def merge_shards(
    plan: ShardPlan,
    images: list[FileSystemImage],
    *,
    shard_fingerprints: list[str] | None = None,
) -> FileSystemImage:
    """Merge shard images (in index order) into the plan's single image.

    The shard images are *consumed*: their nodes are re-parented into the
    merged tree and must not be used as independent images afterwards.
    """
    if len(images) != plan.num_shards:
        raise ShardMergeError(
            f"plan has {plan.num_shards} shards but {len(images)} images were given"
        )
    with_disk = [image for image in images if image.disk is not None]
    if with_disk and len(with_disk) != len(images):
        raise ShardMergeError(
            "cannot merge a mix of images with and without a disk layout; "
            "run every shard through the same stage set"
        )

    merged_tree = FileSystemTree()
    merged_root = merged_tree.root

    merged_disk: SimulatedDisk | None = None
    offsets: list[int] = []
    if with_disk:
        base = 0
        for image in images:
            assert image.disk is not None
            offsets.append(base)
            base += image.disk.num_blocks
        merged_disk = SimulatedDisk(base, geometry=images[0].disk.geometry)

    generators = [image.content_generator for image in images]
    content_generator = next((g for g in generators if g is not None), None)

    used_names: set[str] = set()
    for spec, image in zip(plan.shards, images):
        shard_root = image.tree.root
        shard_files = image.tree.files  # snapshot before re-parenting

        # A file's bytes are a pure function of (content_seed, file_id); the
        # merge reassigns file_ids, so pin the generating pair first.
        if image.content_generator is not None:
            for node in shard_files:
                if node.content_key is None:
                    node.content_key = (image.content_seed, node.file_id)

        # Deterministic collision renames at the top-level split only: the
        # shards' name counters all start at zero, so their root children can
        # collide; deeper siblings come from a single shard and cannot.
        for node in list(shard_root.subdirectories) + list(shard_root.files):
            name = node.name
            while name in used_names:
                name = f"s{spec.index:02d}-{name}"
            node.name = name
            used_names.add(name)

        for file_node in shard_root.files:
            merged_tree.adopt_file(merged_root, file_node)
        for directory in shard_root.subdirectories:
            merged_tree.adopt_subtree(merged_root, directory)

        if merged_disk is not None:
            base = offsets[spec.index]
            for node in shard_files:
                shifted = [(start + base, length) for start, length in node.extents]
                node.extents = shifted
                if node.first_block is not None:
                    node.first_block += base
                merged_disk.adopt_extents(node.path(), shifted)

    master = plan.master
    report = ReproducibilityReport(seed=master.seed, parameters=master.parameter_table())
    report.distributions = {
        "file_size_by_count": dict(master.resolved_size_model().params()),
        "file_size_by_bytes": dict(master.resolved_bytes_model().params()),
        "file_count_with_depth": dict(master.depth_distribution.params()),
        "directory_size_files": dict(master.directory_file_count_model.params()),
    }

    timings = GenerationTimings()
    for image in images:
        shard_timings = image.extras.get("timings")
        if not isinstance(shard_timings, GenerationTimings):
            continue
        # The merged per-phase timing is the max over shards: what the phase
        # costs on the parallel critical path.
        for phase in (
            "directory_structure",
            "file_sizes",
            "extensions",
            "depth_and_placement",
            "content",
            "on_disk_creation",
        ):
            setattr(timings, phase, max(getattr(timings, phase), getattr(shard_timings, phase)))
    for phase, seconds in timings.as_dict().items():
        report.record_timing(phase, seconds)

    merged = FileSystemImage(
        tree=merged_tree,
        disk=merged_disk,
        content_generator=content_generator,
        content_seed=_derive_content_seed(plan),
        report=report,
    )
    report.record_derived("file_count", merged_tree.file_count)
    report.record_derived("directory_count", merged_tree.directory_count)
    report.record_derived("total_bytes", merged_tree.total_bytes)
    report.record_derived("layout_score", merged.achieved_layout_score())
    report.record_derived("shards", plan.num_shards)
    report.record_derived("shard_plan_fingerprint", plan.fingerprint())
    if shard_fingerprints is not None:
        report.record_derived("shard_fingerprints", list(shard_fingerprints))
    merged.extras["timings"] = timings
    merged.extras["shard_plan"] = plan.as_dict()
    return merged


def image_content_digests(image: FileSystemImage) -> list[str]:
    """Sorted per-file SHA-256 digests over *content bytes only*.

    Path-independent by construction (no metadata header), so the list is
    comparable across the rename-on-merge boundary — unlike the materialize
    entry digest, which deliberately covers the path.  Digested over the
    chunked content stream (the bytes materialization writes and
    ``ManifestSink(digest_content=True)`` hashes), which for large text files
    differs from one-shot :meth:`~repro.core.image.FileSystemImage.file_content`.
    """
    import numpy as np

    generator = image.content_generator
    if generator is None:
        raise ShardMergeError("image has no content generator to digest")
    out = []
    for node in image.tree.files:
        key = node.content_key
        if key is None:
            key = (image.content_seed, node.file_id)
        digest = hashlib.sha256()
        for chunk in generator.iter_chunks(node.size, node.extension, np.random.default_rng(key)):
            digest.update(chunk)
        out.append(digest.hexdigest())
    out.sort()
    return out


def manifest_content_digests(manifest_path: str) -> list[str]:
    """Sorted ``content_sha256`` values from a manifest written with
    ``digest_content=True`` (:class:`~repro.materialize.ManifestSink`).

    The multiset over every shard manifest equals
    :func:`image_content_digests` of the merged image — the reuse path the
    shard merge verifier builds on.
    """
    digests: list[str] = []
    with open(manifest_path, encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            row = json.loads(line)
            if row.get("type") != "file":
                continue
            digest = row.get("content_sha256")
            if digest is None:
                raise ShardMergeError(
                    f"manifest {manifest_path!r} carries no content_sha256 rows; "
                    "write it with digest_content=True (--digest-content)"
                )
            digests.append(digest)
    digests.sort()
    return digests
