"""The shared state threaded through a pipeline run.

A :class:`GenerationContext` is the single mutable object every stage reads
and writes: the config, the seeded rng stream, the artifacts built so far
(tree, sizes, extensions, disk, …), the reproducibility report, the
per-stage timings, and — once generation finishes — the assembled
:class:`~repro.core.image.FileSystemImage` that post-generation stages run
against.

The context also defines the cache snapshot boundary: :meth:`snapshot`
captures exactly the state a later run needs to resume *after* a stage
(including the rng state, so downstream sampling continues bit-for-bit), and
:meth:`restore` puts it back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import ImpressionsConfig
from repro.core.report import ReproducibilityReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.content.generators import ContentGenerator
    from repro.core.image import FileSystemImage
    from repro.core.impressions import GenerationTimings
    from repro.layout.disk import SimulatedDisk
    from repro.namespace.tree import FileSystemTree

__all__ = ["GenerationContext"]


@dataclass
class GenerationContext:
    """Everything a stage may read or write during a pipeline run.

    Attributes:
        config: the immutable configuration of the run.
        rng: the shared sequential random stream (every generation stage
            draws from this one generator, in stage order).
        report: reproducibility report being assembled.
        timings: per-phase wall-clock timings (core phases as fields,
            post-generation stages under ``extras``).
        tree: namespace tree (after ``directory_structure``).
        sizes: sampled file sizes (after ``file_sizes``).
        extensions: sampled extensions (after ``extensions``).
        content_generator: content generator, or None for metadata-only runs
            (after ``depth_and_placement``).
        content_seed: base seed for lazy per-file content (after ``content``).
        disk: simulated disk with the block layout (after ``on_disk_creation``).
        image: the assembled image; set by the pipeline before post-generation
            stages run.
        metrics: per-stage metric mappings recorded by post-generation stages,
            keyed by stage label.
        artifacts: names of the artifacts produced so far (wiring bookkeeping).
    """

    config: ImpressionsConfig
    rng: np.random.Generator
    report: ReproducibilityReport
    timings: "GenerationTimings"
    tree: "FileSystemTree | None" = None
    sizes: np.ndarray | None = None
    extensions: list[str] | None = None
    content_generator: "ContentGenerator | None" = None
    content_seed: int = 0
    disk: "SimulatedDisk | None" = None
    image: "FileSystemImage | None" = None
    metrics: dict[str, dict] = field(default_factory=dict)
    artifacts: set[str] = field(default_factory=set)

    @classmethod
    def create(cls, config: ImpressionsConfig) -> "GenerationContext":
        """A fresh context for one run: seeded rng, empty report and timings."""
        from repro.core.impressions import GenerationTimings

        report = ReproducibilityReport(seed=config.seed, parameters=config.parameter_table())
        report.distributions = {
            "file_size_by_count": dict(config.resolved_size_model().params()),
            "file_size_by_bytes": dict(config.resolved_bytes_model().params()),
            "file_count_with_depth": dict(config.depth_distribution.params()),
            "directory_size_files": dict(config.directory_file_count_model.params()),
        }
        return cls(
            config=config,
            rng=np.random.default_rng(config.seed),
            report=report,
            timings=GenerationTimings(),
        )

    @classmethod
    def for_image(
        cls, image: "FileSystemImage", config: ImpressionsConfig
    ) -> "GenerationContext":
        """A context wrapping an already generated image.

        Post-generation stages (trace replay, aging, bench) run against this
        when invoked outside a full pipeline — e.g. from a campaign step.
        """
        from repro.core.impressions import GenerationTimings

        report = image.report or ReproducibilityReport(seed=config.seed)
        timings = image.extras.get("timings") or GenerationTimings()
        context = cls(config=config, rng=np.random.default_rng(config.seed), report=report, timings=timings)
        context.tree = image.tree
        context.disk = image.disk
        context.content_generator = image.content_generator
        context.content_seed = image.content_seed
        context.image = image
        context.artifacts.update({"tree", "files", "content", "disk", "image"})
        return context

    # Cache snapshot boundary ---------------------------------------------------

    #: Timing fields restored per-stage from a snapshot (stage name → field).
    _SNAPSHOT_FIELDS = (
        "tree",
        "sizes",
        "extensions",
        "content_generator",
        "content_seed",
        "disk",
    )

    def snapshot(self, stage_timings: dict[str, float]) -> dict:
        """The resumable state after a generation stage, as a plain dict.

        Includes the rng state (downstream stages must keep sampling the same
        stream), every artifact field, the artifact name set, the report's
        derived values recorded so far, and the wall-clock each completed
        stage cost in the run that produced the snapshot (restored so a
        cache-hit report still carries representative phase timings).
        Serialization is the cache's job (:class:`~repro.pipeline.cache.StageCache`).
        """
        state = {field_name: getattr(self, field_name) for field_name in self._SNAPSHOT_FIELDS}
        state["rng"] = self.rng
        state["artifacts"] = set(self.artifacts)
        state["derived"] = dict(self.report.derived)
        state["stage_timings"] = dict(stage_timings)
        return state

    def restore(self, state: dict) -> dict[str, float]:
        """Restore a :meth:`snapshot`, returning its per-stage timings."""
        for field_name in self._SNAPSHOT_FIELDS:
            setattr(self, field_name, state[field_name])
        self.rng = state["rng"]
        self.artifacts = set(state["artifacts"])
        self.report.derived.update(state["derived"])
        return dict(state["stage_timings"])

    # Wiring helpers ------------------------------------------------------------

    def provide(self, *names: str) -> None:
        self.artifacts.update(names)

    def has(self, name: str) -> bool:
        return name in self.artifacts
