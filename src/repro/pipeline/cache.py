"""Content-addressed on-disk cache of stage artifacts.

Entries are keyed by stage fingerprint (:func:`repro.pipeline.stage.stage_fingerprint`):
the digest covers the stage's knob values, its params, the pipeline format
version and the whole upstream chain, so a key can only ever map to one
semantic artifact — the cache needs no invalidation, only garbage collection.

Each entry is the pickled context snapshot *after* that stage
(:meth:`~repro.pipeline.context.GenerationContext.snapshot`).  The pipeline
probes from the deepest generation stage backwards and resumes from the first
hit; campaign scenarios that share generation knobs but differ only in steps
therefore generate the image once and restore it everywhere else.

Writes are atomic (temp file + ``os.replace``), so concurrent campaign
workers sharing one cache directory race benignly: both compute the same
artifact and the last rename wins with identical bytes.  Corrupt or
unreadable entries are treated as misses and removed.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass

from repro.core.config import ImpressionsConfig
from repro.metadata.extensions import DEFAULT_EXTENSION_MODEL

__all__ = ["CacheStats", "StageCache", "config_cache_safe"]


@dataclass
class CacheStats:
    """Hit/miss/store counters for one pipeline run (or one cache lifetime)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted_corrupt": self.evicted_corrupt,
        }


class StageCache:
    """A directory of fingerprint-addressed pickled stage snapshots."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = CacheStats()

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], f"{fingerprint}.pkl")

    def has(self, fingerprint: str) -> bool:
        """Whether an entry exists (no counters touched — probe only)."""
        return os.path.exists(self._path(fingerprint))

    def load(self, fingerprint: str) -> dict | None:
        """The snapshot state for ``fingerprint``, or None on miss/corruption.

        A truncated or unreadable entry counts as a miss (and is evicted)
        rather than surfacing an exception deep inside the restore path.
        """
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                state = pickle.load(handle)
            if not isinstance(state, dict):
                raise ValueError("snapshot entry is not a state dict")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self.stats.misses += 1
            self.stats.evicted_corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return state

    def store(self, fingerprint: str, state: dict) -> None:
        """Atomically write the snapshot ``state`` under ``fingerprint``."""
        path = self._path(fingerprint)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def entry_count(self) -> int:
        """Number of entries currently on disk (walks the directory)."""
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".pkl"))
        return count


def config_cache_safe(config: ImpressionsConfig) -> bool:
    """Whether ``config``'s identity is fully captured by its knob view.

    Stage fingerprints cover :meth:`ImpressionsConfig.to_knobs` only.  A
    config carrying model-object overrides outside that view (a custom size
    distribution, a timestamp model, a tweaked extension or placement model)
    would collide with the plain config sharing its knobs, so the pipeline
    silently disables the cache for it instead of risking a wrong restore.
    """
    if (
        config.file_size_model is not None
        or config.file_size_by_bytes_model is not None
        or config.timestamp_model is not None
    ):
        return False
    if config.extension_model is not DEFAULT_EXTENSION_MODEL:
        return False
    defaults = ImpressionsConfig.from_knobs(config.to_knobs())
    if config.depth_distribution != defaults.depth_distribution:
        return False
    if dict(config.mean_bytes_by_depth) != dict(defaults.mean_bytes_by_depth):
        return False
    if config.directory_file_count_model != defaults.directory_file_count_model:
        return False
    if tuple(config.special_directories) != tuple(defaults.special_directories):
        return False
    if config.content != defaults.content:
        return False
    return True
