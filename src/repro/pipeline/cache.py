"""Content-addressed on-disk cache of stage artifacts.

Entries are keyed by stage fingerprint (:func:`repro.pipeline.stage.stage_fingerprint`):
the digest covers the stage's knob values, its params, the pipeline format
version and the whole upstream chain, so a key can only ever map to one
semantic artifact — the cache needs no invalidation, only garbage collection.

Each entry is the pickled context snapshot *after* that stage
(:meth:`~repro.pipeline.context.GenerationContext.snapshot`).  The pipeline
probes from the deepest generation stage backwards and resumes from the first
hit; campaign scenarios that share generation knobs but differ only in steps
therefore generate the image once and restore it everywhere else.

Writes are atomic with a checksum trailer (temp file + SHA-256 seal +
``fsync`` + ``os.replace`` via :mod:`repro.faults.atomic`), so concurrent
campaign workers sharing one cache directory race benignly: both compute the
same artifact and the last rename wins with identical bytes.  Reads verify
the trailer; a torn, truncated, or bit-flipped entry is *detected* (counted
as ``corruption_detected_total{layer="cache"}``), *quarantined* into the
cache's ``.quarantine/`` sidecar with a reason record, and *self-healed* by
treating it as a miss — the pipeline regenerates and re-stores it.

Transient I/O errors (EIO, ENOSPC) never fail the run: a
:class:`CacheCircuitBreaker` counts consecutive failures and, past its
threshold, opens for a cooldown during which ``load``/``store`` degrade to
cache-bypass no-ops.  The cache is an accelerator, not a dependency.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import time
from dataclasses import dataclass, field

from repro.core.config import ImpressionsConfig
from repro.faults import atomic as fault_atomic
from repro.faults import plan as fault_plan
from repro.metadata.extensions import DEFAULT_EXTENSION_MODEL

__all__ = [
    "CacheBusyError",
    "CacheCircuitBreaker",
    "CacheStats",
    "StageCache",
    "cache_lock",
    "config_cache_safe",
]


class CacheBusyError(RuntimeError):
    """Raised when another live process holds a stage-cache directory's lock."""


@dataclass
class CacheStats:
    """Hit/miss/store counters for one pipeline run (or one cache lifetime)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0
    io_errors: int = 0
    bypassed: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted_corrupt": self.evicted_corrupt,
            "io_errors": self.io_errors,
            "bypassed": self.bypassed,
        }


@dataclass
class CacheCircuitBreaker:
    """Degrade to cache-bypass after repeated I/O failures.

    ``failure_threshold`` *consecutive* ``OSError`` failures open the
    breaker for ``cooldown_seconds``; while open, cache reads and writes are
    no-ops (every load a miss, every store skipped) so a sick disk slows
    nothing down and fails no jobs.  One success — or the cooldown elapsing —
    closes it again.  Corruption does not trip the breaker: a corrupt entry
    is quarantined and healed by regeneration, which is the cache working,
    not failing.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 30.0
    consecutive_failures: int = 0
    opened_at: float | None = field(default=None, repr=False)
    times_opened: int = 0

    def is_open(self) -> bool:
        if self.opened_at is None:
            return False
        if time.monotonic() - self.opened_at >= self.cooldown_seconds:
            self.opened_at = None
            self.consecutive_failures = 0
            return False
        return True

    def record_failure(self) -> bool:
        """Count one I/O failure; True if this one opened the breaker."""
        self.consecutive_failures += 1
        if self.opened_at is None and self.consecutive_failures >= self.failure_threshold:
            self.opened_at = time.monotonic()
            self.times_opened += 1
            fault_plan.count_heal("cache", "breaker_open")
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0


class StageCache:
    """A directory of fingerprint-addressed, checksum-sealed stage snapshots."""

    def __init__(self, root: str, breaker: CacheCircuitBreaker | None = None) -> None:
        self.root = root
        self.stats = CacheStats()
        self.breaker = breaker if breaker is not None else CacheCircuitBreaker()

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], f"{fingerprint}.pkl")

    def has(self, fingerprint: str) -> bool:
        """Whether an entry exists (no counters touched — probe only)."""
        return os.path.exists(self._path(fingerprint))

    def _quarantine(self, path: str, fingerprint: str, reason: str) -> None:
        """Detect + quarantine + heal-by-eviction for one bad entry."""
        self.stats.evicted_corrupt += 1
        fault_plan.count_corruption("cache")
        fault_atomic.quarantine_file(
            self.root,
            path,
            layer="cache",
            reason=reason,
            detail={"fingerprint": fingerprint},
        )
        fault_plan.count_heal("cache", "evict_regenerate")

    def load(self, fingerprint: str) -> dict | None:
        """The snapshot state for ``fingerprint``, or None on miss/corruption.

        A torn, truncated, or unreadable entry is quarantined and counts as
        a miss rather than surfacing an exception deep inside the restore
        path — the pipeline regenerates the stage and re-stores it, which is
        the self-heal.  I/O errors count toward the circuit breaker; while
        it is open every load is a bypass miss.
        """
        if self.breaker.is_open():
            self.stats.misses += 1
            self.stats.bypassed += 1
            return None
        path = self._path(fingerprint)
        try:
            payload = fault_atomic.read_verified(path, fault_point="cache.entry.read")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except fault_atomic.CorruptionError as exc:
            self.stats.misses += 1
            self._quarantine(path, fingerprint, exc.reason)
            return None
        except OSError:
            self.stats.misses += 1
            self.stats.io_errors += 1
            self.breaker.record_failure()
            return None
        try:
            state = pickle.loads(payload)
            if not isinstance(state, dict):
                raise ValueError("snapshot entry is not a state dict")
        except Exception:  # detlint: ignore[broad-except] quarantine-and-regenerate is the contract
            # The seal verified, so the bytes are what store() wrote — a
            # stale-format or wrong-object entry, not disk damage; still
            # quarantine and regenerate.
            self.stats.misses += 1
            self._quarantine(path, fingerprint, "unpicklable")
            return None
        self.breaker.record_success()
        self.stats.hits += 1
        return state

    def store(self, fingerprint: str, state: dict) -> None:
        """Atomically write the sealed snapshot ``state`` under ``fingerprint``.

        Disk failures (ENOSPC, EIO) are swallowed after feeding the circuit
        breaker — a cache store must never fail the generation that produced
        the artifact.  Serialization errors still raise: an unpicklable
        snapshot is a bug, not weather.
        """
        if self.breaker.is_open():
            self.stats.bypassed += 1
            return
        path = self._path(fingerprint)
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fault_atomic.atomic_write_bytes(path, payload, fault_point="cache.entry.write")
        except OSError:
            self.stats.io_errors += 1
            self.breaker.record_failure()
            return
        self.breaker.record_success()
        self.stats.stores += 1

    def entry_count(self) -> int:
        """Number of entries currently on disk (walks the directory)."""
        count = 0
        for _, dirnames, files in os.walk(self.root):
            dirnames.sort()
            files.sort()
            count += sum(1 for name in files if name.endswith(".pkl"))
        return count


@contextlib.contextmanager
def cache_lock(
    root: str,
    owner: str = "",
    on_busy: str = "error",
    max_age_seconds: float | None = None,
):
    """Advisory lock on a stage-cache directory for the duration of a run.

    Cache *writes* are already atomic, so concurrent sharers cannot corrupt
    entries — but two workers pointed at one directory silently duplicate
    each other's generation work, and a facade user who passes one
    ``cache_dir`` to concurrent ``generate()`` calls almost certainly meant
    per-worker slices.  The lock turns that foot-gun into a clear error.

    The lock is a ``.lock`` file created with ``O_CREAT | O_EXCL`` holding a
    JSON ``{"pid", "owner", "created"}`` record.  A lock is *stale* — the
    holder is gone and left it behind — and is reclaimed when either:

    * its pid is no longer alive (the holder crashed without unlinking), or
    * it is older than ``max_age_seconds``.  Pid liveness alone cannot catch
      a holder that died after its pid was recycled by an unrelated process,
      so long-lived sharers (farm workers) bound the lock's age too; any run
      legitimately holding a lock that long should extend ``max_age_seconds``
      past its worst-case wall time.

    Reclaims are counted on the bound telemetry (if any) as
    ``cache_lock_reclaims_total{reason="dead_pid"|"max_age"}``.

    When a *live* process holds the lock:

    * ``on_busy="error"`` raises :class:`CacheBusyError` naming the holder;
    * ``on_busy="ignore"`` proceeds without acquiring (atomic writes make
      sharing benign — just redundant), for callers like shard workers whose
      slices are already per-worker.
    """
    if on_busy not in ("error", "ignore"):
        raise ValueError(f"on_busy must be 'error' or 'ignore', not {on_busy!r}")
    if max_age_seconds is not None and max_age_seconds <= 0:
        raise ValueError("max_age_seconds must be positive (or None to disable)")
    os.makedirs(root, exist_ok=True)
    lock_path = os.path.join(root, ".lock")
    record = json.dumps({"pid": os.getpid(), "owner": owner, "created": time.time()})
    acquired = False
    for _ in range(2):  # second pass retries after reclaiming a stale lock
        try:
            descriptor = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            holder_pid, holder_owner, holder_age = _read_lock(lock_path)
            stale_reason = None
            if holder_pid is not None and not _pid_alive(holder_pid):
                stale_reason = "dead_pid"
            elif (
                max_age_seconds is not None
                and holder_age is not None
                and holder_age > max_age_seconds
            ):
                stale_reason = "max_age"
            if stale_reason is not None:
                with contextlib.suppress(OSError):
                    os.remove(lock_path)
                _count_reclaim(stale_reason)
                continue
            if on_busy == "ignore":
                break
            holder = f"pid {holder_pid}" if holder_pid is not None else "an unknown process"
            if holder_owner:
                holder += f" ({holder_owner})"
            raise CacheBusyError(
                f"stage cache {root!r} is in use by {holder}; concurrent workers "
                "must use per-worker cache slices (see repro.shard.shard_cache_slice), "
                "or pass on_cache_busy='ignore' to share the directory anyway"
            ) from None
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(record)
        acquired = True
        break
    try:
        yield
    finally:
        if acquired:
            with contextlib.suppress(OSError):
                os.remove(lock_path)


def _count_reclaim(reason: str) -> None:
    """Surface a stale-lock reclaim on the bound telemetry, if any."""
    from repro.obs import core as obs_core

    telemetry = obs_core.current()
    if telemetry is not None:
        telemetry.counter(
            "cache_lock_reclaims_total",
            "stale stage-cache locks reclaimed",
            ("reason",),
        ).inc(reason=reason)


def _read_lock(lock_path: str) -> tuple[int | None, str, float | None]:
    """The ``(pid, owner, age_seconds)`` of a lock file, tolerating corruption.

    Age prefers the recorded ``created`` stamp; a corrupt or pre-stamp lock
    falls back to the file's mtime so the max-age bound still applies to it.
    """
    pid: int | None = None
    owner = ""
    created: float | None = None
    try:
        with open(lock_path, encoding="utf-8") as handle:
            data = json.loads(handle.read())
        pid = int(data["pid"])
        owner = str(data.get("owner", ""))
        created = float(data["created"])
    except (OSError, ValueError, KeyError, TypeError):
        pass
    if created is None:
        try:
            created = os.stat(lock_path).st_mtime
        except OSError:
            return pid, owner, None
    return pid, owner, max(0.0, time.time() - created)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def config_cache_safe(config: ImpressionsConfig) -> bool:
    """Whether ``config``'s identity is fully captured by its knob view.

    Stage fingerprints cover :meth:`ImpressionsConfig.to_knobs` only.  A
    config carrying model-object overrides outside that view (a custom size
    distribution, a timestamp model, a tweaked extension or placement model)
    would collide with the plain config sharing its knobs, so the pipeline
    silently disables the cache for it instead of risking a wrong restore.
    """
    if (
        config.file_size_model is not None
        or config.file_size_by_bytes_model is not None
        or config.timestamp_model is not None
    ):
        return False
    # Value equality, not identity: configs that crossed a pickle boundary
    # (shard/campaign worker processes) carry an equal copy of the default.
    if config.extension_model != DEFAULT_EXTENSION_MODEL:
        return False
    defaults = ImpressionsConfig.from_knobs(config.to_knobs())
    if config.depth_distribution != defaults.depth_distribution:
        return False
    if dict(config.mean_bytes_by_depth) != dict(defaults.mean_bytes_by_depth):
        return False
    if config.directory_file_count_model != defaults.directory_file_count_model:
        return False
    if tuple(config.special_directories) != tuple(defaults.special_directories):
        return False
    if config.content != defaults.content:
        return False
    return True
