"""The six generation stages of the default pipeline (Section 3.3 / Table 6).

Each stage ports one phase of the previous monolithic
``Impressions.generate()`` onto the :class:`~repro.pipeline.stage.Stage`
protocol.  The stages share the context's sequential rng stream, so running
them in order consumes random draws exactly as the monolith did — the default
pipeline is seed-for-seed identical to the historical generator (the golden
equivalence test pins this).

Stage names equal the :class:`~repro.core.impressions.GenerationTimings`
field they record, which is also the Table 6 row name.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constraints.resolver import ConstraintResolver, ConstraintSpec
from repro.content.generators import ContentGenerator
from repro.layout.disk import SimulatedDisk
from repro.layout.fragmenter import Fragmenter
from repro.metadata.extensions import content_kind_for_extension
from repro.metadata.names import NameGenerator
from repro.namespace.generative_model import GenerativeTreeModel
from repro.namespace.placement import FilePlacer
from repro.namespace.special_dirs import install_special_directories
from repro.pipeline.context import GenerationContext
from repro.pipeline.stage import PipelineError, Stage

__all__ = [
    "DirectoryStructureStage",
    "FileSizesStage",
    "ExtensionsStage",
    "PlacementStage",
    "ContentStage",
    "OnDiskCreationStage",
    "GENERATION_STAGES",
]


class DirectoryStructureStage(Stage):
    """Phase 1 — the generative tree model builds the namespace."""

    name = "directory_structure"
    provides = ("tree",)
    config_knobs = (
        "seed",
        "num_directories",
        "num_files",
        "fs_size_bytes",
        "files_per_directory",
        "use_simple_size_model",
        "attachment_offset",
        "special_directories",
    )

    def run(self, context: GenerationContext) -> None:
        config = context.config
        model = GenerativeTreeModel(attachment_offset=config.attachment_offset)
        tree = model.generate(config.resolved_num_directories(), context.rng)
        if config.special_directories:
            install_special_directories(tree, tuple(config.special_directories), context.rng)
        context.tree = tree


class FileSizesStage(Stage):
    """Phase 2 — sample sizes; reconcile against the target sum if pinned."""

    name = "file_sizes"
    provides = ("sizes",)
    config_knobs = (
        "seed",
        "num_files",
        "fs_size_bytes",
        "use_simple_size_model",
        "enforce_fs_size",
        "beta",
        "max_oversampling_factor",
    )

    def run(self, context: GenerationContext) -> None:
        config = context.config
        num_files = config.resolved_num_files()
        size_model = config.resolved_size_model()

        if config.enforce_fs_size and config.fs_size_bytes is not None:
            spec = ConstraintSpec(
                num_values=num_files,
                target_sum=float(config.fs_size_bytes),
                distribution=size_model,
                beta=config.beta,
                max_oversampling_factor=config.max_oversampling_factor,
            )
            result = ConstraintResolver(spec, context.rng).resolve()
            context.report.record_derived("constraint_final_beta", result.final_beta)
            context.report.record_derived("constraint_oversampling", result.oversampling_factor)
            context.report.record_derived("constraint_converged", result.converged)
            sizes = result.values
        else:
            sizes = np.asarray(size_model.sample(context.rng, num_files), dtype=float)
        context.sizes = np.maximum(np.round(sizes), 0).astype(np.int64)


class ExtensionsStage(Stage):
    """Phase 3 — assign extensions from the popularity model."""

    name = "extensions"
    requires = ("sizes",)
    provides = ("extensions",)
    config_knobs = ("seed",)

    def run(self, context: GenerationContext) -> None:
        assert context.sizes is not None
        context.extensions = context.config.extension_model.sample_extensions(
            context.rng, len(context.sizes)
        )


class PlacementStage(Stage):
    """Phase 4 — depth selection, parent placement, file creation, timestamps."""

    name = "depth_and_placement"
    requires = ("tree", "sizes", "extensions")
    provides = ("files",)
    config_knobs = (
        "seed",
        "use_multiplicative_depth_model",
        "special_directories",
        "content_model",
    )

    def run(self, context: GenerationContext) -> None:
        config = context.config
        tree, sizes, extensions = context.tree, context.sizes, context.extensions
        assert tree is not None and sizes is not None and extensions is not None
        content_generator = (
            ContentGenerator(policy=config.content) if config.generate_content else None
        )
        context.content_generator = content_generator

        special_nodes = {
            directory.special_label: directory
            for directory in tree.directories
            if directory.special_label is not None
        }
        placer = FilePlacer(
            tree=tree,
            model=config.placement_model(),
            rng=context.rng,
            special_nodes=special_nodes,
        )
        names = NameGenerator()
        for size, extension in zip(sizes, extensions):
            parent = placer.place(int(size))
            kind = (
                content_generator.content_kind(extension)
                if content_generator is not None
                else content_kind_for_extension(extension)
            )
            tree.create_file(
                parent=parent,
                size=int(size),
                extension=extension,
                name=names.next_file_name(extension),
                content_kind=kind,
            )

        # Optional file timestamps (age model).  The model object is outside
        # the knob view, so configs carrying one are excluded from the cache
        # (see config_cache_safe) rather than silently mis-keyed.
        if config.timestamp_model is not None:
            now = config.timestamp_now if config.timestamp_now is not None else time.time()
            context.report.record_derived("timestamp_now", now)
            for file_node in tree.files:
                file_node.timestamps = config.timestamp_model.sample(context.rng, now)


class ContentStage(Stage):
    """Phase 5 — draw the content seed; probe one generation eagerly.

    Content bytes stay lazy (regenerated on demand from the content seed and
    each file's index); the probe surfaces configuration errors early and is
    what Table 6 charges to the content phase.
    """

    name = "content"
    requires = ("files",)
    provides = ("content",)
    config_knobs = ("seed", "content_model")

    def run(self, context: GenerationContext) -> None:
        tree = context.tree
        assert tree is not None
        context.content_seed = int(context.rng.integers(0, 2**31 - 1))
        if context.content_generator is not None and tree.file_count:
            probe = tree.files[0]
            probe_rng = np.random.default_rng((context.content_seed, probe.file_id))
            context.content_generator.generate(
                min(probe.size, 4096), probe.extension, probe_rng
            )


class OnDiskCreationStage(Stage):
    """Phase 6 — allocate files on the simulated disk at the target layout."""

    name = "on_disk_creation"
    requires = ("files",)
    provides = ("disk",)
    config_knobs = (
        "seed",
        "layout_score",
        "disk_capacity_bytes",
        "block_size",
        "fs_size_bytes",
        "num_files",
        "use_simple_size_model",
    )

    def run(self, context: GenerationContext) -> None:
        config = context.config
        tree = context.tree
        assert tree is not None
        # Size the disk for whichever is larger: the configured capacity or the
        # bytes actually sampled (a Pareto-tail file can exceed the nominal FS
        # size), with 30% slack for the fragmenter's temporary files.
        needed_blocks = int(tree.total_bytes * 1.3) // config.block_size + tree.file_count + 1024
        capacity_blocks = max(
            config.resolved_disk_capacity() // config.block_size, needed_blocks, 1024
        )
        disk = SimulatedDisk(num_blocks=capacity_blocks)
        fragmenter = Fragmenter(disk=disk, target_score=config.layout_score, rng=context.rng)
        for file_node in tree.files:
            extents = fragmenter.allocate_regular_file(file_node.path(), file_node.size)
            file_node.extents = extents
            file_node.first_block = extents[0][0] if extents else None
        fragmenter.finish()
        context.disk = disk


#: The default generation stage classes, in phase order.
GENERATION_STAGES: tuple[type[Stage], ...] = (
    DirectoryStructureStage,
    FileSizesStage,
    ExtensionsStage,
    PlacementStage,
    ContentStage,
    OnDiskCreationStage,
)


def require_image(context: GenerationContext) -> None:
    """Guard for post-generation stages: the image must exist by now."""
    if context.image is None:
        raise PipelineError(
            "post-generation stage ran before the pipeline assembled the image"
        )
