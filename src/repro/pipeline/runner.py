"""The :class:`Pipeline`: validated stage wiring, timing, caching, resume.

``Pipeline.run`` executes its stages in order against one
:class:`~repro.pipeline.context.GenerationContext`:

1. wiring is validated (every declared ``requires`` satisfied upstream,
   generation stages before post-generation stages);
2. per-stage fingerprints are chained (:mod:`repro.pipeline.stage`);
3. with a :class:`~repro.pipeline.cache.StageCache`, the deepest cached
   generation stage is restored and only the remainder runs — a full hit
   skips generation entirely;
4. the :class:`~repro.core.image.FileSystemImage` is assembled and the
   reproducibility report finalised exactly as the historical monolithic
   generator did;
5. post-generation stages (trace replay, aging, bench drivers) run against
   the finished image.

:func:`default_pipeline` builds the paper's six-phase sequence;
:func:`image_fingerprint` digests the deterministic identity of a generated
image (used by the golden-equivalence test and the CI cache smoke job).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.obs import core as obs_core
from repro.pipeline.cache import StageCache, config_cache_safe
from repro.pipeline.context import GenerationContext
from repro.pipeline.stage import Stage, StageWiringError

__all__ = [
    "Pipeline",
    "PipelineResult",
    "StageExecution",
    "default_pipeline",
    "image_fingerprint",
]


@dataclass(frozen=True)
class StageExecution:
    """What happened to one stage during a run."""

    name: str
    fingerprint: str
    seconds: float
    cached: bool
    post_generation: bool

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "seconds": self.seconds,
            "cached": self.cached,
            "post_generation": self.post_generation,
        }


@dataclass
class PipelineResult:
    """Everything one ``Pipeline.run`` produced."""

    image: FileSystemImage
    context: GenerationContext
    executions: list[StageExecution] = field(default_factory=list)
    cache_enabled: bool = False
    cache_stores: int = 0

    @property
    def generation_executions(self) -> list[StageExecution]:
        return [execution for execution in self.executions if not execution.post_generation]

    @property
    def cache_hits(self) -> int:
        """Generation stages satisfied from the cache this run."""
        return sum(1 for execution in self.generation_executions if execution.cached)

    @property
    def cache_misses(self) -> int:
        """Generation stages that had to execute this run."""
        return sum(1 for execution in self.generation_executions if not execution.cached)

    @property
    def generation_cached(self) -> bool:
        """True when every generation stage was restored from the cache."""
        executions = self.generation_executions
        return bool(executions) and all(execution.cached for execution in executions)

    def cache_summary(self) -> dict:
        return {
            "enabled": self.cache_enabled,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "stores": self.cache_stores,
            "generated": not self.generation_cached,
        }

    def as_dict(self) -> dict:
        return {
            "stages": [execution.as_dict() for execution in self.executions],
            "cache": self.cache_summary(),
        }


class Pipeline:
    """An ordered, validated sequence of stages."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        self.stages = list(stages)
        self.validate()

    # Introspection --------------------------------------------------------------

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def fingerprints(self, config: ImpressionsConfig) -> list[str]:
        """The chained fingerprint of every stage for ``config``, in order."""
        out: list[str] = []
        upstream: str | None = None
        for stage in self.stages:
            upstream = stage.fingerprint(config, upstream)
            out.append(upstream)
        return out

    def describe(self, config: ImpressionsConfig | None = None) -> list[dict]:
        """Static stage rows (plus fingerprints when a config is given)."""
        rows = [stage.describe() for stage in self.stages]
        if config is not None:
            for row, fingerprint in zip(rows, self.fingerprints(config)):
                row["fingerprint"] = fingerprint
        return rows

    # Construction helpers -------------------------------------------------------

    def subset(self, names: Iterable[str]) -> "Pipeline":
        """A pipeline of just the named stages, in this pipeline's order.

        The subset is re-validated, so dropping a stage another one requires
        (e.g. keeping ``depth_and_placement`` without ``directory_structure``)
        fails loudly instead of producing a broken image.
        """
        wanted = list(names)
        unknown = sorted(set(wanted) - set(self.stage_names))
        if unknown:
            raise StageWiringError(
                f"unknown stage(s) {unknown}; this pipeline has {list(self.stage_names)}"
            )
        return Pipeline([stage for stage in self.stages if stage.name in set(wanted)])

    def extended(self, extra: Iterable[Stage]) -> "Pipeline":
        """A new pipeline with ``extra`` stages appended."""
        return Pipeline(self.stages + list(extra))

    # Validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check stage wiring; raises :class:`StageWiringError` on problems."""
        if not self.stages:
            raise StageWiringError("a pipeline needs at least one stage")
        generation = [stage for stage in self.stages if not stage.post_generation]
        seen_post = False
        names_seen: set[str] = set()
        for stage in self.stages:
            if stage.post_generation:
                seen_post = True
            elif seen_post:
                raise StageWiringError(
                    f"generation stage {stage.name!r} appears after a post-generation "
                    "stage; generation stages must all come first"
                )
            if not stage.post_generation:
                if stage.name in names_seen:
                    raise StageWiringError(f"duplicate generation stage name {stage.name!r}")
                names_seen.add(stage.name)

        # Post-generation stages record metrics under their effective label;
        # two stages sharing one label would silently overwrite each other.
        labels_seen: set[str] = set()
        for stage in self.stages:
            if not stage.post_generation:
                continue
            label = str(getattr(stage, "label", stage.name))
            if label in labels_seen:
                raise StageWiringError(
                    f"duplicate post-generation stage label {label!r}; give each "
                    "instance a distinct 'label' param"
                )
            labels_seen.add(label)

        if generation and not any("tree" in stage.provides for stage in generation):
            raise StageWiringError(
                "pipeline provides no 'tree' artifact; include the "
                "'directory_structure' stage (images need a namespace)"
            )

        available: set[str] = set()
        for stage in self.stages:
            if stage.post_generation:
                # The pipeline itself provides 'image' between the generation
                # stages and the post-generation stages.
                available.add("image")
            missing = sorted(set(stage.requires) - available)
            if missing:
                raise StageWiringError(
                    f"stage {stage.name!r} requires {missing} but upstream stages "
                    f"only provide {sorted(available)}"
                )
            available.update(stage.provides)

    # Execution ------------------------------------------------------------------

    def run(
        self,
        config: ImpressionsConfig,
        *,
        cache: StageCache | None = None,
        progress: Callable[[str], None] | None = None,
        telemetry: "obs_core.Telemetry | None" = None,
    ) -> PipelineResult:
        """Run every stage and return the result bundle.

        Args:
            config: the image configuration.
            cache: optional stage cache; silently disabled for configs whose
                identity exceeds the knob view (see
                :func:`~repro.pipeline.cache.config_cache_safe`).
            progress: optional callback receiving one line per stage.
            telemetry: optional :class:`repro.obs.Telemetry`; defaults to the
                context-bound one (:func:`repro.obs.current`), so a
                ``with obs.use(...)`` around the call observes the run.  When
                set, every stage becomes a span (``cached`` marked), cache
                events become counters and the run binds the telemetry for
                post stages (replay, materialize) to pick up.
        """
        tele = telemetry if telemetry is not None else obs_core.current()
        if tele is None:
            return self._run(config, cache=cache, progress=progress, telemetry=None)
        with obs_core.use(tele):
            return self._run(config, cache=cache, progress=progress, telemetry=tele)

    def _run(
        self,
        config: ImpressionsConfig,
        *,
        cache: StageCache | None,
        progress: Callable[[str], None] | None,
        telemetry: "obs_core.Telemetry | None",
    ) -> PipelineResult:
        tele = telemetry
        if tele is None:
            return self._run_stages(config, cache=cache, progress=progress, telemetry=None)
        with tele.span("pipeline", stages=str(len(self.stages))):
            result = self._run_stages(config, cache=cache, progress=progress, telemetry=tele)
        # Fold the summary in only after the root span closed, so the report
        # sees the pipeline span's real duration.
        report = result.image.report
        if report is not None:
            from repro.obs.export import summary_dict

            report.record_telemetry(summary_dict(tele))
        return result

    def _run_stages(
        self,
        config: ImpressionsConfig,
        *,
        cache: StageCache | None,
        progress: Callable[[str], None] | None,
        telemetry: "obs_core.Telemetry | None",
    ) -> PipelineResult:
        tele = telemetry
        context = GenerationContext.create(config)
        generation = [stage for stage in self.stages if not stage.post_generation]
        post = [stage for stage in self.stages if stage.post_generation]
        use_cache = cache is not None and config_cache_safe(config)

        fingerprints = self.fingerprints(config)
        generation_fps = fingerprints[: len(generation)]

        # Resume from the deepest cached generation stage, if any.
        stage_timings: dict[str, float] = {}
        resume_index = -1
        cache_stats_before = dict(cache.stats.as_dict()) if use_cache else {}
        if use_cache:
            assert cache is not None
            probe_span = (
                tele.span("cache_probe") if tele is not None else contextlib.nullcontext()
            )
            with probe_span:
                for index in reversed(range(len(generation))):
                    if not generation[index].cacheable:
                        continue
                    state = cache.load(generation_fps[index])
                    if state is not None:
                        stage_timings.update(context.restore(state))
                        resume_index = index
                        break

        executions: list[StageExecution] = []
        stores = 0
        for index, stage in enumerate(generation):
            if index <= resume_index:
                seconds = stage_timings.get(stage.name, 0.0)
                self._record_timing(context, stage.name, seconds)
                executions.append(
                    StageExecution(stage.name, generation_fps[index], seconds, True, False)
                )
                if tele is not None:
                    # Zero-duration marker span: the stage was restored, not run.
                    with tele.span(stage.name, stage=stage.name, cached="true",
                                   phase="generation"):
                        pass
                    tele.counter(
                        "pipeline_stages_total",
                        "pipeline stages by outcome",
                        labels=("stage", "outcome"),
                    ).inc(stage=stage.name, outcome="cached")
                if progress:
                    progress(f"cached {stage.name} ({generation_fps[index][:12]})")
                continue
            stage_span = (
                tele.span(stage.name, stage=stage.name, cached="false", phase="generation")
                if tele is not None
                else contextlib.nullcontext()
            )
            start = time.perf_counter()
            with stage_span:
                stage.run(context)
                context.provide(*stage.provides)
            seconds = time.perf_counter() - start
            stage_timings[stage.name] = seconds
            self._record_timing(context, stage.name, seconds)
            executions.append(
                StageExecution(stage.name, generation_fps[index], seconds, False, False)
            )
            if tele is not None:
                tele.counter(
                    "pipeline_stages_total",
                    "pipeline stages by outcome",
                    labels=("stage", "outcome"),
                ).inc(stage=stage.name, outcome="run")
            if progress:
                progress(f"run    {stage.name} ({seconds:.3f}s)")
            if use_cache and stage.cacheable:
                assert cache is not None
                store_span = (
                    tele.span("cache_store", stage=stage.name)
                    if tele is not None
                    else contextlib.nullcontext()
                )
                with store_span:
                    cache.store(generation_fps[index], context.snapshot(stage_timings))
                stores += 1

        image = self._assemble(context, executions)
        result = PipelineResult(
            image=image,
            context=context,
            executions=executions,
            cache_enabled=use_cache,
            cache_stores=stores,
        )
        image.extras["pipeline"] = result.as_dict()

        for offset, stage in enumerate(post):
            fingerprint = fingerprints[len(generation) + offset]
            stage_span = (
                tele.span(stage.name, stage=stage.name, cached="false", phase="post")
                if tele is not None
                else contextlib.nullcontext()
            )
            start = time.perf_counter()
            with stage_span:
                stage.run(context)
            seconds = time.perf_counter() - start
            executions.append(StageExecution(stage.name, fingerprint, seconds, False, True))
            if tele is not None:
                tele.counter(
                    "pipeline_stages_total",
                    "pipeline stages by outcome",
                    labels=("stage", "outcome"),
                ).inc(stage=stage.name, outcome="run")
            if progress:
                progress(f"run    {stage.name} ({seconds:.3f}s)")
        if post:
            # Refresh the recorded view now that post stages added executions
            # and possibly metrics.
            image.extras["pipeline"] = result.as_dict()

        if tele is not None:
            self._record_telemetry(
                tele, result, cache if use_cache else None, cache_stats_before
            )
        return result

    # Internals ------------------------------------------------------------------

    @staticmethod
    def _record_telemetry(
        tele: "obs_core.Telemetry",
        result: PipelineResult,
        cache: StageCache | None,
        cache_stats_before: dict,
    ) -> None:
        """Fold run-level counters/gauges and the report summary in."""
        events = tele.counter(
            "pipeline_cache_events_total",
            "stage cache events (probe hits/misses, stores, corrupt evictions)",
            labels=("event",),
        )
        if cache is not None:
            for event, value in cache.stats.as_dict().items():
                delta = value - cache_stats_before.get(event, 0)
                if delta > 0:
                    events.inc(delta, event=event)
        # Restored generation stages (the resume depth) — distinct from probe
        # hits: one probe hit can restore several upstream stages at once.
        if result.cache_hits:
            events.inc(result.cache_hits, event="restored_stages")

        report = result.image.report
        derived = report.derived if report is not None else {}
        gauges = (
            ("image_files", "files in the generated image", "file_count"),
            ("image_directories", "directories in the generated image", "directory_count"),
            ("image_bytes", "total apparent bytes in the image", "total_bytes"),
            ("image_layout_score", "achieved layout score", "layout_score"),
        )
        for name, help_text, key in gauges:
            if key in derived:
                tele.gauge(name, help_text).set(float(derived[key]))

    @staticmethod
    def _record_timing(context: GenerationContext, name: str, seconds: float) -> None:
        timings = context.timings
        if hasattr(timings, name) and not name.startswith("_") and name != "extras":
            setattr(timings, name, seconds)
        else:
            timings.extras[name] = seconds

    def _assemble(
        self, context: GenerationContext, executions: list[StageExecution]
    ) -> FileSystemImage:
        """Build the image and finalise the report (the monolith's epilogue)."""
        tree = context.tree
        if tree is None:
            raise StageWiringError("cannot assemble an image: no stage built the tree")
        report = context.report
        for execution in executions:
            report.record_timing(execution.name, execution.seconds)
        report.record_timing("total", context.timings.total)
        report.record_derived("file_count", tree.file_count)
        report.record_derived("directory_count", tree.directory_count)
        report.record_derived("total_bytes", tree.total_bytes)

        image = FileSystemImage(
            tree=tree,
            disk=context.disk,
            content_generator=context.content_generator,
            content_seed=context.content_seed,
            report=report,
        )
        report.record_derived("layout_score", image.achieved_layout_score())
        image.extras["timings"] = context.timings
        context.image = image
        context.provide("image")
        return image


def default_pipeline(extra_stages: Iterable[Stage] | None = None) -> Pipeline:
    """The paper's six-phase generation sequence, optionally extended.

    ``extra_stages`` are appended after the generation phases — the natural
    place for registered post-generation stages (trace replay, aging, bench).
    """
    from repro.pipeline.stages import GENERATION_STAGES

    stages: list[Stage] = [stage_class() for stage_class in GENERATION_STAGES]
    if extra_stages is not None:
        stages.extend(extra_stages)
    return Pipeline(stages)


def image_fingerprint(image: FileSystemImage) -> str:
    """SHA-256 digest of an image's deterministic identity.

    Covers the namespace (paths, sizes, extensions, content kinds), the block
    layout (first block per file), the achieved layout score, the content
    seed and the report's deterministic sections.  Wall-clock timings and the
    (optionally nondeterministic) ``timestamp_now`` are excluded, so two runs
    of one config — monolithic facade, fresh pipeline, or cache restore —
    digest identically.
    """
    report = image.report
    derived = {}
    if report is not None:
        derived = {k: v for k, v in report.derived.items() if k != "timestamp_now"}
    document = {
        "files": [
            (f.path(), f.size, f.extension, f.first_block, f.content_kind)
            for f in image.tree.files
        ],
        "dirs": sorted(d.path() for d in image.tree.walk_depth_first()),
        "layout": image.achieved_layout_score(),
        "content_seed": image.content_seed,
        "derived": derived,
        "summary": image.summary(),
    }
    canonical = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
