"""Composable staged generation (the Section 3.3 phases as first-class units).

The paper describes image creation as an explicit phase sequence and times it
phase by phase (Table 6).  This package turns those phases into composable
:class:`Stage` objects wired through a shared :class:`GenerationContext` and
run by a :class:`Pipeline`:

* :mod:`repro.pipeline.stage` — the ``Stage`` protocol (declared inputs,
  outputs and config knobs) and per-stage SHA-256 fingerprints chained over
  upstream stages.
* :mod:`repro.pipeline.context` — the :class:`GenerationContext` carrying the
  config, the seeded rng stream, the tree/sizes/disk artifacts, the report
  and the per-stage timings.
* :mod:`repro.pipeline.stages` — the six generation stages of the default
  pipeline (``directory_structure`` … ``on_disk_creation``).
* :mod:`repro.pipeline.registry` — a name → stage factory registry; trace
  replay, trace-driven aging and bench drivers register here as
  post-generation stages.
* :mod:`repro.pipeline.cache` — a content-addressed on-disk artifact cache
  keyed by stage fingerprint, so pipelines resume mid-run and campaign
  scenarios sharing generation knobs reuse the cached image.
* :mod:`repro.pipeline.runner` — the :class:`Pipeline` itself plus
  :func:`default_pipeline` and :func:`image_fingerprint`.

Quickstart::

    from repro.pipeline import StageCache, default_pipeline

    pipeline = default_pipeline()
    result = pipeline.run(config, cache=StageCache("/tmp/stage-cache"))
    image = result.image          # identical to Impressions(config).generate()
    result.executions             # per-stage fingerprint / seconds / cached?
"""

from repro.pipeline.cache import CacheStats, StageCache, config_cache_safe
from repro.pipeline.context import GenerationContext
from repro.pipeline.registry import get_stage_factory, register_stage, stage_names
from repro.pipeline.runner import (
    Pipeline,
    PipelineResult,
    StageExecution,
    default_pipeline,
    image_fingerprint,
)
from repro.pipeline.stage import PipelineError, Stage, StageWiringError

__all__ = [
    "CacheStats",
    "GenerationContext",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "Stage",
    "StageCache",
    "StageExecution",
    "StageWiringError",
    "config_cache_safe",
    "default_pipeline",
    "get_stage_factory",
    "image_fingerprint",
    "register_stage",
    "stage_names",
]
