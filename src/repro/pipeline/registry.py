"""Stage registry: name → stage factory, plus the post-generation stages.

The registry makes pipelines declarative — a name list is enough to build
one — and gives the previously ad-hoc extras (trace replay, trace-driven
aging, bench drivers) a first-class home: they are ordinary
:class:`~repro.pipeline.stage.Stage` subclasses flagged ``post_generation``,
so the pipeline runs them against the assembled image with the same timing,
fingerprinting and progress treatment as the generation phases.

Campaign steps (:mod:`repro.campaign.registry`) delegate to these stages via
:func:`run_post_stage`, so both entry points share one implementation.

Post-generation stages record their metrics under
``context.metrics[label]`` where ``label`` defaults to the stage name and can
be overridden with a ``label`` param (several instances of one stage can then
coexist in a pipeline).
"""

from __future__ import annotations

import importlib
from typing import Callable, Mapping

import numpy as np

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.pipeline.context import GenerationContext
from repro.pipeline.stage import PipelineError, Stage
from repro.pipeline.stages import (
    GENERATION_STAGES,
    require_image,
)
from repro.trace.aging import TraceAger
from repro.trace.replay import ReplayResult, TraceReplayer
from repro.trace.synthesize import (
    ChurnSpec,
    MetadataStormSpec,
    ZipfMixSpec,
    synthesize_churn,
    synthesize_metadata_storm,
    synthesize_zipf_mix,
)

__all__ = [
    "register_stage",
    "get_stage_factory",
    "build_stage",
    "stage_names",
    "run_post_stage",
    "replay_metrics",
    "synthesize_trace",
    "TraceReplayStage",
    "TraceAgingStage",
    "BenchStage",
    "MaterializeStage",
]

StageFactory = Callable[[Mapping[str, object] | None], Stage]

_REGISTRY: dict[str, StageFactory] = {}


def register_stage(stage_class: type[Stage]) -> type[Stage]:
    """Class decorator registering ``stage_class`` under its ``name``."""
    name = stage_class.name
    if not name:
        raise ValueError(f"stage class {stage_class.__name__} declares no name")
    if name in _REGISTRY:
        raise ValueError(f"stage {name!r} is already registered")
    _REGISTRY[name] = stage_class
    return stage_class


def get_stage_factory(name: str) -> StageFactory:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown stage {name!r}; registered stages: {stage_names()}"
        ) from None


def build_stage(name: str, params: Mapping[str, object] | None = None) -> Stage:
    """Instantiate the registered stage called ``name`` with ``params``."""
    return get_stage_factory(name)(params)


def stage_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


for _stage_class in GENERATION_STAGES:
    register_stage(_stage_class)


# Post-generation stages -------------------------------------------------------


def synthesize_trace(kind: str, image: FileSystemImage, ops: int, seed: int, batch_size: int):
    """Build one synthetic trace of ``kind`` against ``image`` (shared helper)."""
    if kind == "zipf":
        return synthesize_zipf_mix(image, ZipfMixSpec(num_ops=ops, batch_size=batch_size), seed=seed)
    if kind == "churn":
        return synthesize_churn(ChurnSpec(num_ops=ops, batch_size=batch_size), seed=seed)
    if kind == "storm":
        return synthesize_metadata_storm(
            MetadataStormSpec(num_dirs=10, files_per_dir=max(1, ops // 40), batch_size=batch_size),
            seed=seed,
        )
    raise ValueError(f"unknown trace kind {kind!r}; expected zipf, churn, or storm")


def replay_metrics(result: ReplayResult) -> dict:
    """Flatten a :class:`ReplayResult` into the shared scalar metric set."""
    return {
        "executed": result.executed,
        "skipped": result.skipped,
        "simulated_ms": result.simulated_ms,
        "cache_hit_ratio": result.cache_hit_ratio,
        "simulated_throughput_ops_s": result.simulated_throughput_ops_s,
    }


class PostGenerationStage(Stage):
    """Base for stages that run against the finished image."""

    post_generation = True
    cacheable = False
    requires = ("image",)

    @property
    def label(self) -> str:
        return str(self.params.get("label", self.name))

    def run(self, context: GenerationContext) -> None:
        require_image(context)
        assert context.image is not None
        metrics = self.execute(context.image, context.config)
        context.metrics[self.label] = dict(metrics)

    def execute(self, image: FileSystemImage, config: ImpressionsConfig) -> Mapping[str, object]:
        raise NotImplementedError


@register_stage
class TraceReplayStage(PostGenerationStage):
    """Synthesize a trace and replay it against the image.

    Params: ``kind`` ∈ zipf|churn|storm, ``ops``, ``seed_offset``,
    ``batch_size``, ``warm_cache``, ``label``.
    """

    name = "trace_replay"
    provides = ("replay_stats",)
    config_knobs = ("seed",)

    def execute(self, image: FileSystemImage, config: ImpressionsConfig) -> dict:
        params = self.params
        kind = str(params.get("kind", "zipf"))
        ops = int(params.get("ops", 5_000))
        seed = config.seed + int(params.get("seed_offset", 0))
        trace = synthesize_trace(kind, image, ops, seed, int(params.get("batch_size", 64)))
        replayer = TraceReplayer(image)
        if params.get("warm_cache"):
            replayer.warm_cache()
        return replay_metrics(replayer.replay(trace))


@register_stage
class TraceAgingStage(PostGenerationStage):
    """Trace-driven aging of the image to a target layout score.

    Params: ``target_score`` (required), ``seed_offset``, ``label``.
    """

    name = "trace_aging"
    provides = ("aging_stats",)
    config_knobs = ("seed",)

    def execute(self, image: FileSystemImage, config: ImpressionsConfig) -> dict:
        target = self.params.get("target_score")
        if target is None:
            raise PipelineError("trace_aging stage requires a 'target_score' param")
        seed = config.seed + int(self.params.get("seed_offset", 0))
        ager = TraceAger(image, float(target), np.random.default_rng(seed))
        result = ager.age()
        return {
            "initial_score": result.initial_score,
            "achieved_score": result.achieved_score,
            "target_score": result.target_score,
            "score_error": result.error,
            "files_rewritten": result.files_rewritten,
            "operations": len(result.trace),
        }


@register_stage
class BenchStage(PostGenerationStage):
    """Run a :mod:`repro.bench` driver's ``run()`` and report its scalars.

    Params: ``driver`` (module name in ``repro.bench``) plus the driver's own
    keyword arguments, and ``label``.  Bench drivers generate their own
    images; the surrounding image is context only.
    """

    name = "bench"
    provides = ("bench_stats",)

    def execute(self, image: FileSystemImage, config: ImpressionsConfig) -> dict:
        params = dict(self.params)
        params.pop("label", None)
        driver_name = params.pop("driver", None)
        if not driver_name or not isinstance(driver_name, str) or "." in driver_name:
            raise PipelineError("bench stage requires a 'driver' module name from repro.bench")
        module = importlib.import_module(f"repro.bench.{driver_name}")
        run = getattr(module, "run", None)
        if run is None:
            raise PipelineError(f"bench driver {driver_name!r} has no run() function")
        result = run(**params)
        metrics: dict[str, object] = {}
        for key, value in result.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[key] = value
        if not metrics:
            metrics["completed"] = 1
        return metrics


@register_stage
class MaterializeStage(PostGenerationStage):
    """Materialize the finished image through a pluggable sink.

    Params: ``sink`` ∈ dir|tar|manifest|null (default ``null``), ``path``
    (required for every sink but ``null``), ``jobs`` (DirectorySink worker
    processes), ``order`` ∈ namespace|extent, ``write_content`` (tri-state;
    default: only if the image carries a content generator),
    ``digest_content`` (ManifestSink per-file content hashes), ``verify``
    (round-trip verification, on by default), and ``label``.

    Reported metrics are deterministic (entry counts, the order-independent
    content digest, verification outcomes); wall-clock phase timings stay on
    the :class:`~repro.materialize.MaterializeResult` and out of campaign
    result rows, which must be byte-comparable across runs.
    """

    name = "materialize"
    provides = ("materialize_stats",)

    def execute(self, image: FileSystemImage, config: ImpressionsConfig) -> dict:
        from repro.materialize import MaterializeError, build_sink, materialize_image

        params = self.params
        kind = str(params.get("sink", "null"))
        path = params.get("path")
        order = str(params.get("order", "namespace"))
        write_content = params.get("write_content")
        try:
            sink = build_sink(kind, str(path) if path is not None else None,
                              jobs=int(params.get("jobs", 1)),
                              digest_content=bool(params.get("digest_content", False)))
            result = materialize_image(
                image,
                sink,
                order=order,
                write_content=None if write_content is None else bool(write_content),
            )
        except MaterializeError as error:
            raise PipelineError(str(error)) from error
        metrics: dict[str, object] = {
            "files": result.files,
            "directories": result.directories,
            "total_bytes": result.total_bytes,
            "content_digest": result.content_digest,
            "order": result.order,
            "write_content": int(result.write_content),
        }
        for key in ("archive_bytes", "archive_sha256", "manifest_bytes", "lines"):
            if key in result.extras:
                metrics[key] = result.extras[key]
        if params.get("verify", True):
            verification = result.verify(config=config)
            metrics["verify_passed"] = int(verification.passed)
            metrics["verify_source"] = verification.source
            for check in verification.checks:
                metrics[f"verify_{check.name}"] = check.statistic
        return metrics


def run_post_stage(
    name: str,
    image: FileSystemImage,
    config: ImpressionsConfig,
    params: Mapping[str, object] | None = None,
) -> dict:
    """Run one registered post-generation stage against an existing image.

    This is the bridge the campaign step registry uses: it wraps ``image`` in
    a context, executes the stage, and returns its recorded metrics.
    """
    stage = build_stage(name, params)
    if not stage.post_generation:
        raise PipelineError(f"stage {name!r} is a generation stage, not a post-generation one")
    context = GenerationContext.for_image(image, config)
    stage.run(context)
    assert isinstance(stage, PostGenerationStage)
    return dict(context.metrics[stage.label])
