"""``impressions pipeline`` subcommands.

Two verbs::

    impressions pipeline inspect --files 2000 --seed 7 [--cache-dir DIR] [--json]
    impressions pipeline stages [--json]

``inspect`` renders the stage graph for a concrete config: every stage's
declared inputs/outputs, the config knobs it fingerprints, its chained
SHA-256 fingerprint, and — when a cache directory is given — whether that
fingerprint is already cached (i.e. what a run would resume from).
``stages`` lists every registered stage, including the post-generation ones
available to pipeline extensions and campaign steps.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.pipeline.cache import StageCache, config_cache_safe
from repro.pipeline.registry import build_stage, stage_names
from repro.pipeline.runner import default_pipeline
from repro.pipeline.stage import PipelineError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro.core.cli import add_config_arguments

    parser = argparse.ArgumentParser(
        prog="impressions pipeline",
        description="Inspect the staged generation pipeline.",
        epilog=f"Registered stages: {', '.join(stage_names())}.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect = commands.add_parser("inspect", help="show the stage graph for a config")
    add_config_arguments(inspect)
    inspect.add_argument(
        "--stages",
        metavar="LIST",
        default=None,
        help="comma-separated subset of generation stages (as for plain 'impressions')",
    )
    inspect.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="also report whether each stage fingerprint is cached here",
    )
    inspect.add_argument("--json", action="store_true", help="print the graph as JSON")

    stages = commands.add_parser("stages", help="list every registered stage")
    stages.add_argument("--json", action="store_true", help="print stage rows as JSON")
    return parser


def _run_inspect(args: argparse.Namespace) -> int:
    from repro.core.cli import config_from_args

    config = config_from_args(args)
    pipeline = default_pipeline()
    if args.stages:
        names = [name.strip() for name in args.stages.split(",") if name.strip()]
        pipeline = pipeline.subset(names)
    rows = pipeline.describe(config)

    cache = StageCache(args.cache_dir) if args.cache_dir else None
    cache_safe = config_cache_safe(config)
    if cache is not None:
        for row in rows:
            row["cached"] = (
                cache_safe and not row["post_generation"] and cache.has(row["fingerprint"])
            )

    cache_info = None
    if cache is not None:
        cache_info = _cache_section(args.cache_dir, cache, rows, cache_safe)

    if args.json:
        payload = {
            "config_fingerprint": config.fingerprint(),
            "cache_safe": cache_safe,
            "stages": rows,
        }
        if cache_info is not None:
            payload["cache"] = cache_info
        print(json.dumps(payload, sort_keys=True, default=str))
        return 0

    print(f"pipeline for config {config.fingerprint()[:12]} ({len(rows)} stages)")
    if not cache_safe:
        print("note: config carries model overrides outside the knob view; cache disabled")
    if cache_info is not None:
        resume = cache_info["resume_from"] or "nothing cached — full run"
        print(
            f"cache: {cache_info['entries']} entr(y/ies) in {args.cache_dir}; "
            f"a run would restore {cache_info['stages_restored_on_run']} stage(s) "
            f"and execute {cache_info['stages_executed_on_run']} (resume from: {resume})"
        )
    for row in rows:
        arrow = f"{', '.join(row['requires']) or '-'} -> {', '.join(row['provides']) or '-'}"
        flags = []
        if row["post_generation"]:
            flags.append("post")
        if cache is not None and row.get("cached"):
            flags.append("cached")
        suffix = f"  [{','.join(flags)}]" if flags else ""
        print(f"  {row['name']:22s} {row['fingerprint'][:12]}  {arrow}{suffix}")
        if row["config_knobs"]:
            print(f"  {'':22s} knobs: {', '.join(row['config_knobs'])}")
    return 0


def _cache_section(cache_dir: str, cache: StageCache, rows: list, cache_safe: bool) -> dict:
    """Predicted cache behaviour for a run of this config.

    Mirrors the runner's resume probe: fingerprints are chained, so the
    deepest cached generation stage restores everything before it in one hit.
    """
    generation = [row for row in rows if not row["post_generation"]]
    cached_names = [row["name"] for row in generation if row.get("cached")]
    # The probe walks cacheable stages deepest-first, one load per stage
    # until the first hit; a hit restores that stage and everything before it.
    probe_hits = 0
    probe_misses = 0
    resume_from = None
    restored = 0
    if cache_safe:
        for index in reversed(range(len(generation))):
            row = generation[index]
            if not row["cacheable"]:
                continue
            if row.get("cached"):
                probe_hits = 1
                resume_from = row["name"]
                restored = index + 1
                break
            probe_misses += 1
    executed = len(generation) - restored
    stores = (
        sum(1 for row in generation[restored:] if row["cacheable"]) if cache_safe else 0
    )
    return {
        "dir": cache_dir,
        "entries": cache.entry_count(),
        "cached_stages": cached_names,
        "resume_from": resume_from,
        "stages_restored_on_run": restored,
        "stages_executed_on_run": executed,
        # Counter deltas a run of this config would record on cache.stats.
        "predicted_stats": {
            "hits": probe_hits,
            "misses": probe_misses,
            "restored_stages": restored,
            "stores": stores,
        },
        "stats": cache.stats.as_dict(),
    }


def _run_stages(args: argparse.Namespace) -> int:
    rows = []
    for name in stage_names():
        stage = build_stage(name)
        rows.append(stage.describe())
    if args.json:
        print(json.dumps(rows, sort_keys=True))
        return 0
    for row in rows:
        kind = "post-generation" if row["post_generation"] else "generation"
        print(f"  {row['name']:22s} {kind}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``impressions pipeline ...``."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "inspect":
            return _run_inspect(args)
        return _run_stages(args)
    except (PipelineError, ValueError) as error:
        raise SystemExit(f"impressions pipeline {args.command}: error: {error}")
    except OSError as error:
        raise SystemExit(f"impressions pipeline {args.command}: error: {error}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
