"""The :class:`Stage` protocol and stage fingerprinting.

A stage is one unit of the generation phase sequence (Section 3.3).  It
declares

* ``requires`` / ``provides`` — the context artifact names it consumes and
  produces, validated by the pipeline before anything runs;
* ``config_knobs`` — the subset of :data:`repro.core.config.KNOB_NAMES` whose
  values influence its behaviour, which is what its fingerprint covers;
* ``params`` — stage-specific parameters outside the config (post-generation
  stages carry their step parameters here).

Fingerprints chain: every stage's digest covers its own identity (name,
format version, knob values, params) *plus the digest of the stage before
it*.  The generation stages share one sequential rng stream, so a stage's
output genuinely depends on everything upstream having sampled exactly the
same values — the linear chain encodes that, and it is what makes the
content-addressed artifact cache (:mod:`repro.pipeline.cache`) sound: a hit
on stage *k* certifies the whole prefix.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import ImpressionsConfig
    from repro.pipeline.context import GenerationContext

__all__ = [
    "PIPELINE_FORMAT_VERSION",
    "PipelineError",
    "Stage",
    "StageWiringError",
    "stage_fingerprint",
]

#: Bumped when the stage fingerprint recipe (or any stage's semantics)
#: changes incompatibly, so stale cache entries can never satisfy new code.
#: 2: extent-based SimulatedDisk / FileNode.extents — snapshots pickled by
#: the block-list representation cannot restore into the new classes.
PIPELINE_FORMAT_VERSION = 2


class PipelineError(RuntimeError):
    """Raised when a pipeline cannot run (bad wiring, missing artifacts)."""


class StageWiringError(PipelineError):
    """Raised when a stage's declared inputs are not satisfied upstream."""


class Stage(ABC):
    """One composable unit of the generation pipeline.

    Attributes:
        name: unique stage name (also the timing key it records under).
        requires: artifact names that must be present in the context before
            the stage runs.
        provides: artifact names the stage guarantees afterwards.
        config_knobs: config knob names that influence the stage — the only
            part of the config its fingerprint covers.
        params: stage-specific parameters, fingerprinted verbatim.
        cacheable: whether the post-stage context snapshot may be stored in
            (and restored from) a :class:`~repro.pipeline.cache.StageCache`.
        post_generation: ``False`` for the generation phases that build the
            image, ``True`` for stages that run against the finished image
            (trace replay, aging, bench drivers).
    """

    name: str = ""
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    config_knobs: tuple[str, ...] = ()
    cacheable: bool = True
    post_generation: bool = False

    def __init__(self, params: Mapping[str, object] | None = None) -> None:
        self.params: dict[str, object] = dict(params or {})

    @abstractmethod
    def run(self, context: "GenerationContext") -> None:
        """Execute the stage, mutating ``context`` in place."""

    def fingerprint(self, config: "ImpressionsConfig", upstream: str | None) -> str:
        """Content digest of this stage given ``config`` and the chain so far."""
        return stage_fingerprint(self, config, upstream)

    def describe(self) -> dict:
        """Static JSON view of the stage (the ``pipeline inspect`` row)."""
        return {
            "name": self.name,
            "requires": list(self.requires),
            "provides": list(self.provides),
            "config_knobs": sorted(self.config_knobs),
            "params": dict(self.params),
            "cacheable": self.cacheable,
            "post_generation": self.post_generation,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def stage_fingerprint(
    stage: Stage, config: "ImpressionsConfig", upstream: str | None
) -> str:
    """SHA-256 over (format, stage name, relevant knob values, params, upstream).

    Only the knobs the stage *declares* enter the digest, so sweeping a knob
    that affects nothing before stage *k* leaves stages ``< k`` fingerprints
    — and their cache entries — intact (e.g. a ``layout_score`` sweep reuses
    everything up to ``on_disk_creation``).
    """
    knobs = config.to_knobs()
    document = {
        "format": PIPELINE_FORMAT_VERSION,
        "stage": stage.name,
        "knobs": {name: knobs[name] for name in sorted(stage.config_knobs)},
        "params": stage.params,
        "upstream": upstream,
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
