"""Buffer-cache model.

Previous work (and Figure 1's "Cached" bar) shows the contents of the buffer
cache can change benchmark results dramatically; benchmark runs therefore
distinguish a cold cache from a warmed one.  The model here is deliberately
simple: a byte-budgeted LRU over named objects (directory metadata blocks and
file data).  A *warm* cache is produced by touching every object once before
measurement, exactly like the warm-up phase the paper describes.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BufferCache"]


class BufferCache:
    """Byte-budgeted LRU cache of named objects."""

    def __init__(self, capacity_bytes: int | None = None) -> None:
        """``capacity_bytes=None`` means an unbounded cache (fits everything)."""
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive (or None for unbounded)")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity_bytes(self) -> int | None:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def access(self, key: str, size_bytes: int) -> bool:
        """Access an object; returns True on a hit, False on a miss.

        Misses insert the object (evicting LRU entries if needed); hits move
        it to the MRU position.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._insert(key, size_bytes)
        return False

    def warm(self, items: dict[str, int]) -> None:
        """Pre-load the cache with the given {key: size} objects."""
        for key, size in items.items():
            self._insert(key, size)
        # Warming should not count toward measured hit/miss statistics.
        self.hits = 0
        self.misses = 0

    def discard(self, key: str) -> bool:
        """Drop one object if present (a delete/rename invalidation).

        Returns True when the key was cached.  Does not count as a hit or a
        miss: invalidation is bookkeeping, not an access.
        """
        if key not in self._entries:
            return False
        self._used -= self._entries.pop(key)
        return True

    def invalidate(self) -> None:
        """Drop everything (a cold cache)."""
        self._entries.clear()
        self._used = 0

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _insert(self, key: str, size_bytes: int) -> None:
        if key in self._entries:
            self._used -= self._entries.pop(key)
        if self._capacity is not None:
            # Objects larger than the whole cache are simply not cached.
            if size_bytes > self._capacity:
                return
            while self._used + size_bytes > self._capacity and self._entries:
                _, evicted_size = self._entries.popitem(last=False)
                self._used -= evicted_size
        self._entries[key] = size_bytes
        self._used += size_bytes
