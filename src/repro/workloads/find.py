"""Simulated ``find`` traversal (Figure 1).

``find /`` walks every directory, reads its entries, and matches names; it
touches metadata only.  The simulator models the costs that make Figure 1 look
the way it does:

* every directory visit reads the directory's blocks from the simulated disk
  unless they are in the buffer cache;
* deeper directories are more expensive to visit — each extra path component
  costs a dentry/inode lookup that misses the on-disk metadata more often the
  deeper the tree is (the paper's flat-vs-deep 300% gap);
* fragmentation scatters metadata, inflating the positioning cost of each
  uncached directory read;
* per-entry name matching is a small CPU cost, which is all that remains when
  the cache is warm.

Absolute times are not meaningful (this is a simulator); the relative bars of
Figure 1 are.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.image import FileSystemImage
from repro.workloads.cache import BufferCache

__all__ = ["FindCostModel", "FindResult", "FindSimulator"]


@dataclass(frozen=True)
class FindCostModel:
    """Tunable cost constants of the find simulator (all in milliseconds)."""

    #: CPU cost of examining one directory entry (name comparison).
    per_entry_cpu_ms: float = 0.002
    #: CPU cost of processing a cached directory (readdir from page cache).
    cached_directory_cpu_ms: float = 0.02
    #: extra positioning cost per path component of the directory being
    #: visited, modelling dentry/inode chain lookups on uncached metadata.
    depth_penalty_ms: float = 0.15
    #: positioning discount when the directory visited is a sibling of the
    #: previously visited one: siblings are allocated near each other, so the
    #: metadata read is a short seek instead of a full one.  Flat trees are
    #: almost entirely sibling-to-sibling transitions; deep chains never are.
    sibling_locality_discount: float = 0.45
    #: how strongly fragmentation (1 - layout score) inflates positioning.
    fragmentation_factor: float = 8.0
    #: directory entries that fit in one 4 KB directory block.
    entries_per_block: int = 64


@dataclass
class FindResult:
    """Outcome of one simulated find run."""

    elapsed_ms: float
    directories_visited: int
    entries_examined: int
    matches: int
    cache_hit_ratio: float


class FindSimulator:
    """Simulates ``find`` over a generated image."""

    def __init__(
        self,
        image: FileSystemImage,
        cache: BufferCache | None = None,
        cost_model: FindCostModel | None = None,
    ) -> None:
        self._image = image
        self._cache = cache if cache is not None else BufferCache()
        self._costs = cost_model or FindCostModel()

    @property
    def cache(self) -> BufferCache:
        return self._cache

    def warm_cache(self) -> None:
        """Load every directory's metadata into the buffer cache."""
        items = {
            self._metadata_key(directory.path()): self._directory_bytes(directory)
            for directory in self._image.tree.walk_depth_first()
        }
        self._cache.warm(items)

    def run(self, name_substring: str = "target") -> FindResult:
        """Traverse the whole namespace looking for ``name_substring``."""
        costs = self._costs
        disk = self._image.disk
        layout = self._image.achieved_layout_score()
        fragmentation_multiplier = 1.0 + costs.fragmentation_factor * (1.0 - layout)

        elapsed = 0.0
        directories = 0
        entries = 0
        matches = 0
        previous_parent = None
        for directory in self._image.tree.walk_depth_first():
            directories += 1
            key = self._metadata_key(directory.path())
            size = self._directory_bytes(directory)
            if self._cache.access(key, size):
                elapsed += costs.cached_directory_cpu_ms
            else:
                blocks = max(1, size // (costs.entries_per_block * 64))
                if disk is not None:
                    positioning = disk.geometry.access_time_ms(1, blocks)
                else:
                    positioning = 12.0
                if directory.parent is not None and directory.parent is previous_parent:
                    # Sibling of the directory visited just before: short seek.
                    positioning *= costs.sibling_locality_discount
                positioning *= fragmentation_multiplier
                positioning += costs.depth_penalty_ms * directory.depth * fragmentation_multiplier
                elapsed += positioning
            previous_parent = directory.parent
            entry_count = directory.subdirectory_count + directory.file_count
            entries += entry_count
            elapsed += entry_count * costs.per_entry_cpu_ms
            for file_node in directory.files:
                if name_substring in file_node.name:
                    matches += 1
        return FindResult(
            elapsed_ms=elapsed,
            directories_visited=directories,
            entries_examined=entries,
            matches=matches,
            cache_hit_ratio=self._cache.hit_ratio(),
        )

    # Internal helpers ---------------------------------------------------------

    def _metadata_key(self, path: str) -> str:
        return f"meta:{path}"

    def _directory_bytes(self, directory) -> int:
        entry_count = directory.subdirectory_count + directory.file_count
        return max(4096, 64 * entry_count)
