"""Content-addressable storage (CAS) / deduplication workload.

Section 3.6 of the paper uses CAS as the motivating example for realistic
content: "When evaluating a CAS-based system, the disk-block traffic and the
corresponding performance will depend only on the unique content — in this
case belonging to the largest file in the file system" (when every file holds
identical bytes, as Postmark generates them).

:class:`CasSimulator` chunks every file of an image (fixed-size or
content-defined chunking), hashes the chunks, and reports the deduplication
ratio and the unique-versus-total byte traffic a CAS system would see.  Run it
against images generated with the single-word content model, the default word
models, or the similarity-controlled generator to quantify exactly how much
the content model changes the conclusions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.image import FileSystemImage

__all__ = ["CasResult", "CasSimulator"]


@dataclass
class CasResult:
    """Outcome of ingesting one image into a simulated CAS store."""

    total_bytes: int
    unique_bytes: int
    total_chunks: int
    unique_chunks: int
    files_ingested: int

    @property
    def dedup_ratio(self) -> float:
        """total / unique bytes (1.0 = nothing deduplicated)."""
        if self.unique_bytes == 0:
            return 1.0
        return self.total_bytes / self.unique_bytes

    @property
    def duplicate_byte_fraction(self) -> float:
        """Fraction of ingested bytes that were already stored."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes


class CasSimulator:
    """Chunk, hash and deduplicate the contents of a generated image.

    Args:
        chunk_size: fixed chunk size in bytes (used directly for fixed-size
            chunking, and as the average target for content-defined chunking).
        content_defined: use a rolling-hash boundary (content-defined
            chunking) instead of fixed-size chunks; insertions then shift
            boundaries instead of re-writing every subsequent chunk.
        max_file_bytes: files larger than this are truncated for hashing to
            bound memory (contents are generated lazily per file).
    """

    def __init__(
        self,
        chunk_size: int = 4096,
        content_defined: bool = False,
        max_file_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if chunk_size < 64:
            raise ValueError("chunk_size must be at least 64 bytes")
        if max_file_bytes < chunk_size:
            raise ValueError("max_file_bytes must be at least one chunk")
        self._chunk_size = chunk_size
        self._content_defined = content_defined
        self._max_file_bytes = max_file_bytes

    def ingest(self, image: FileSystemImage) -> CasResult:
        """Ingest every file of the image and measure deduplication."""
        if image.content_generator is None:
            raise ValueError("CAS ingestion needs an image generated with content")
        seen: set[bytes] = set()
        total_bytes = 0
        unique_bytes = 0
        total_chunks = 0
        files = 0
        for file_node in image.tree.files:
            if file_node.size == 0:
                files += 1
                continue
            content = image.file_content(file_node)[: self._max_file_bytes]
            files += 1
            for chunk in self._chunks(content):
                digest = hashlib.sha1(chunk).digest()
                total_bytes += len(chunk)
                total_chunks += 1
                if digest not in seen:
                    seen.add(digest)
                    unique_bytes += len(chunk)
        return CasResult(
            total_bytes=total_bytes,
            unique_bytes=unique_bytes,
            total_chunks=total_chunks,
            unique_chunks=len(seen),
            files_ingested=files,
        )

    def _chunks(self, content: bytes):
        if not self._content_defined:
            for offset in range(0, len(content), self._chunk_size):
                yield content[offset : offset + self._chunk_size]
            return
        yield from self._content_defined_chunks(content)

    def _content_defined_chunks(self, content: bytes):
        """Simple rolling-sum chunker with an average target of ``chunk_size``.

        A boundary is declared whenever the rolling sum of the last 16 bytes
        hits a mask derived from the target average chunk size; minimum and
        maximum chunk sizes bound the result (¼× and 4× the target).
        """
        target = self._chunk_size
        mask = max(target - 1, 1)
        minimum = max(target // 4, 64)
        maximum = target * 4
        start = 0
        window_sum = 0
        window = bytearray()
        for index, byte in enumerate(content):
            window.append(byte)
            window_sum += byte
            if len(window) > 16:
                window_sum -= window.pop(0)
            length = index - start + 1
            if length >= minimum and (window_sum * 2654435761) % mask == 0 or length >= maximum:
                yield content[start : index + 1]
                start = index + 1
                window_sum = 0
                window.clear()
        if start < len(content):
            yield content[start:]
