"""Workload simulators used by the paper's motivation and case study.

* :mod:`repro.workloads.cache` — a simple buffer-cache model (warm/cold), the
  "Cached" bar of Figure 1.
* :mod:`repro.workloads.find` — simulated ``find`` traversal over an image and
  its simulated disk (Figure 1).
* :mod:`repro.workloads.grep` — simulated content scan (``grep -r``); depends
  on both metadata and file content size.
* :mod:`repro.workloads.search` — the desktop-search case study: Beagle-like
  and Google-Desktop-for-Linux-like indexers with the policies listed in the
  paper (Figures 6, 7 and 8).
"""

from repro.workloads.cache import BufferCache
from repro.workloads.cas import CasResult, CasSimulator
from repro.workloads.find import FindSimulator, FindResult
from repro.workloads.grep import GrepSimulator, GrepResult

__all__ = [
    "BufferCache",
    "FindSimulator",
    "FindResult",
    "GrepSimulator",
    "GrepResult",
    "CasSimulator",
    "CasResult",
]
