"""Google Desktop for Linux (GDL)-like search engine (Section 4).

GDL exposes far fewer knobs than Beagle; the paper documents two hard-coded
policies (Figure 6):

* file *content* is only indexed for files fewer than 10 directories deep
  ("GDL limits its index to only those files less than ten directories deep;
  our analysis of typical file systems indicates that this restriction causes
  10% of all files to be missed"), and
* text files are only content-indexed below 200 KB.

GDL's index is more compact per posting than Beagle's for plain text, but it
extracts searchable strings from binary files, which is why the relative
ordering of index sizes between the two engines flips between text and binary
images (Figure 7).
"""

from __future__ import annotations

from repro.workloads.search.engine import DesktopSearchEngine, IndexingPolicy

__all__ = ["GoogleDesktopSearchEngine", "GDL_BASE_POLICY"]

KIB = 1024

#: Cutoffs straight from the paper's Figure 6 rows for GDL.
GDL_DEPTH_CUTOFF = 10
GDL_TEXT_CUTOFF = 200 * KIB

GDL_BASE_POLICY = IndexingPolicy(
    name="gdl",
    max_content_depth=GDL_DEPTH_CUTOFF,
    size_cutoffs={
        "text": GDL_TEXT_CUTOFF,
        "html": GDL_TEXT_CUTOFF,
        "document": GDL_TEXT_CUTOFF,
        "script": GDL_TEXT_CUTOFF,
    },
    content_kinds=("text", "html", "script", "document"),
    index_directories=True,
    content_filtering=True,
    text_cache=False,
    # Compact index for text, but it does extract strings from binaries.
    bytes_per_posting=10.0,
    attribute_record_bytes=180.0,
    directory_record_bytes=140.0,
    text_terms_per_kb=16.0,
    binary_terms_per_kb=2.5,
    parse_ms_per_mb=26.0,
)


class GoogleDesktopSearchEngine(DesktopSearchEngine):
    """GDL with the documented depth and size cutoffs."""

    def __init__(self, policy: IndexingPolicy | None = None) -> None:
        super().__init__(policy or GDL_BASE_POLICY)
