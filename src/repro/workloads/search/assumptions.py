"""Debunking application assumptions (Figure 6).

For each documented cutoff the paper measures how much of a representative
image falls on the wrong side: e.g. "GDL: file content < 10 deep — 10% of
files and 5% of bytes > 10 deep".  :func:`evaluate_assumptions` performs the
same measurement on any generated image and returns one
:class:`AssumptionReport` per assumption, so the Figure 6 table regenerates
directly from an Impressions image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.image import FileSystemImage
from repro.namespace.tree import FileNode
from repro.workloads.search.beagle import (
    BEAGLE_ARCHIVE_CUTOFF,
    BEAGLE_SCRIPT_CUTOFF,
    BEAGLE_TEXT_CUTOFF,
)
from repro.workloads.search.gdl import GDL_DEPTH_CUTOFF, GDL_TEXT_CUTOFF

__all__ = ["AssumptionReport", "evaluate_assumptions", "DEFAULT_ASSUMPTIONS"]

_TEXT_KINDS = ("text", "html", "document")


@dataclass(frozen=True)
class AssumptionSpec:
    """One application assumption: which files it applies to and its cutoff."""

    application: str
    parameter: str
    applies_to: Callable[[FileNode], bool]
    missed_by_assumption: Callable[[FileNode], bool]


@dataclass
class AssumptionReport:
    """How much of an image an assumption misses (one Figure 6 row)."""

    application: str
    parameter: str
    affected_files: int
    missed_files: int
    affected_bytes: int
    missed_bytes: int

    @property
    def missed_file_fraction(self) -> float:
        return self.missed_files / self.affected_files if self.affected_files else 0.0

    @property
    def missed_byte_fraction(self) -> float:
        return self.missed_bytes / self.affected_bytes if self.affected_bytes else 0.0

    def render(self) -> str:
        return (
            f"{self.application}: {self.parameter} — "
            f"{self.missed_file_fraction:.1%} of files and "
            f"{self.missed_byte_fraction:.1%} of bytes beyond the cutoff"
        )


def _is_text(file_node: FileNode) -> bool:
    return file_node.content_kind in _TEXT_KINDS


def _is_archive(file_node: FileNode) -> bool:
    return file_node.content_kind == "archive"


def _is_script(file_node: FileNode) -> bool:
    return file_node.content_kind == "script"


#: The five assumptions listed in Figure 6.
DEFAULT_ASSUMPTIONS: tuple[AssumptionSpec, ...] = (
    AssumptionSpec(
        application="GDL",
        parameter=f"File content < {GDL_DEPTH_CUTOFF} deep",
        applies_to=lambda file_node: True,
        missed_by_assumption=lambda file_node: file_node.depth > GDL_DEPTH_CUTOFF,
    ),
    AssumptionSpec(
        application="GDL",
        parameter=f"Text file sizes < {GDL_TEXT_CUTOFF // 1024} KB",
        applies_to=_is_text,
        missed_by_assumption=lambda file_node: _is_text(file_node)
        and file_node.size >= GDL_TEXT_CUTOFF,
    ),
    AssumptionSpec(
        application="Beagle",
        parameter=f"Text file cutoff < {BEAGLE_TEXT_CUTOFF // (1024 * 1024)} MB",
        applies_to=_is_text,
        missed_by_assumption=lambda file_node: _is_text(file_node)
        and file_node.size >= BEAGLE_TEXT_CUTOFF,
    ),
    AssumptionSpec(
        application="Beagle",
        parameter=f"Archive files < {BEAGLE_ARCHIVE_CUTOFF // (1024 * 1024)} MB",
        applies_to=_is_archive,
        missed_by_assumption=lambda file_node: _is_archive(file_node)
        and file_node.size >= BEAGLE_ARCHIVE_CUTOFF,
    ),
    AssumptionSpec(
        application="Beagle",
        parameter=f"Shell scripts < {BEAGLE_SCRIPT_CUTOFF // 1024} KB",
        applies_to=_is_script,
        missed_by_assumption=lambda file_node: _is_script(file_node)
        and file_node.size >= BEAGLE_SCRIPT_CUTOFF,
    ),
)


def evaluate_assumptions(
    image: FileSystemImage,
    assumptions: Sequence[AssumptionSpec] = DEFAULT_ASSUMPTIONS,
) -> list[AssumptionReport]:
    """Measure each assumption against a generated image (Figure 6)."""
    reports: list[AssumptionReport] = []
    files = image.tree.files
    for spec in assumptions:
        affected = [file_node for file_node in files if spec.applies_to(file_node)]
        missed = [file_node for file_node in affected if spec.missed_by_assumption(file_node)]
        reports.append(
            AssumptionReport(
                application=spec.application,
                parameter=spec.parameter,
                affected_files=len(affected),
                missed_files=len(missed),
                affected_bytes=sum(file_node.size for file_node in affected),
                missed_bytes=sum(file_node.size for file_node in missed),
            )
        )
    return reports
