"""Desktop-search case study (Section 4).

The paper evaluates two desktop search applications against generated images:
open-source **Beagle** and **Google Desktop for Linux (GDL)**.  Neither binary
is available offline, so this package implements indexers that apply the
*policies* the paper documents for each engine (depth cutoffs, per-type size
cutoffs, filter sets, indexing options), plus a cost/size model for the
resulting index.  The case-study figures only depend on those policies and on
the generated image, so the reproduction exercises the same questions: which
files are skipped (Figure 6), how index size depends on content type
(Figure 7), and how Beagle's indexing options trade time against index size
(Figure 8).

* :mod:`repro.workloads.search.engine` — the shared indexer machinery.
* :mod:`repro.workloads.search.beagle` — the Beagle-like engine and its
  Original / TextCache / DisDir / DisFilter options.
* :mod:`repro.workloads.search.gdl` — the GDL-like engine.
* :mod:`repro.workloads.search.assumptions` — measuring how much of an image
  each documented cutoff misses (Figure 6).
"""

from repro.workloads.search.assumptions import AssumptionReport, evaluate_assumptions
from repro.workloads.search.beagle import BeagleIndexOptions, BeagleSearchEngine
from repro.workloads.search.engine import DesktopSearchEngine, IndexingPolicy, IndexingResult
from repro.workloads.search.gdl import GoogleDesktopSearchEngine

__all__ = [
    "DesktopSearchEngine",
    "IndexingPolicy",
    "IndexingResult",
    "BeagleSearchEngine",
    "BeagleIndexOptions",
    "GoogleDesktopSearchEngine",
    "AssumptionReport",
    "evaluate_assumptions",
]
