"""Beagle-like desktop search engine (Section 4).

Beagle "supports a large number of file types using 52 search-filters" and
exposes indexing options that trade index quality against time and space.  The
paper documents these assumptions (Figure 6):

* text files are only content-indexed below 5 MB,
* archive files below 10 MB,
* shell scripts below 20 KB,

and these indexing options (Figure 8):

* **Original** — the default index,
* **TextCache** — additionally store a text cache of documents used for
  search-hit snippets,
* **DisDir** — do not add directories to the index,
* **DisFilter** — disable all content filtering and index only attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.search.engine import DesktopSearchEngine, IndexingPolicy

__all__ = ["BeagleIndexOptions", "BeagleSearchEngine", "BEAGLE_BASE_POLICY"]

KIB = 1024
MIB = 1024 * 1024

#: Cutoffs straight from the paper's Figure 6 rows for Beagle.
BEAGLE_TEXT_CUTOFF = 5 * MIB
BEAGLE_ARCHIVE_CUTOFF = 10 * MIB
BEAGLE_SCRIPT_CUTOFF = 20 * KIB

BEAGLE_BASE_POLICY = IndexingPolicy(
    name="beagle",
    max_content_depth=None,
    size_cutoffs={
        "text": BEAGLE_TEXT_CUTOFF,
        "html": BEAGLE_TEXT_CUTOFF,
        "document": BEAGLE_TEXT_CUTOFF,
        "archive": BEAGLE_ARCHIVE_CUTOFF,
        "script": BEAGLE_SCRIPT_CUTOFF,
    },
    content_kinds=("text", "html", "script", "document"),
    index_directories=True,
    content_filtering=True,
    text_cache=False,
    # Beagle builds a feature-rich Lucene-style index: more bytes per posting
    # than GDL and richer per-file records, but it extracts nothing from
    # binaries.
    bytes_per_posting=18.0,
    attribute_record_bytes=320.0,
    directory_record_bytes=260.0,
    text_terms_per_kb=22.0,
    binary_terms_per_kb=0.0,
    parse_ms_per_mb=38.0,
)


@dataclass(frozen=True)
class BeagleIndexOptions:
    """The four indexing configurations compared in Figure 8."""

    text_cache: bool = False
    disable_directory_indexing: bool = False
    disable_filtering: bool = False

    @classmethod
    def original(cls) -> "BeagleIndexOptions":
        return cls()

    @classmethod
    def textcache(cls) -> "BeagleIndexOptions":
        return cls(text_cache=True)

    @classmethod
    def disdir(cls) -> "BeagleIndexOptions":
        return cls(disable_directory_indexing=True)

    @classmethod
    def disfilter(cls) -> "BeagleIndexOptions":
        return cls(disable_filtering=True)

    @property
    def label(self) -> str:
        if self.text_cache:
            return "TextCache"
        if self.disable_directory_indexing:
            return "DisDir"
        if self.disable_filtering:
            return "DisFilter"
        return "Original"


class BeagleSearchEngine(DesktopSearchEngine):
    """Beagle with one of its indexing option sets applied."""

    def __init__(self, options: BeagleIndexOptions | None = None) -> None:
        options = options or BeagleIndexOptions.original()
        policy = BEAGLE_BASE_POLICY.with_options(
            name=f"beagle-{options.label.lower()}",
            text_cache=options.text_cache,
            index_directories=not options.disable_directory_indexing,
            content_filtering=not options.disable_filtering,
        )
        super().__init__(policy)
        self._options = options

    @property
    def options(self) -> BeagleIndexOptions:
        return self._options
