"""Shared desktop-search indexer machinery.

A desktop search engine crawls the namespace, decides per file whether (and
how much of) its content to index, extracts terms, and stores postings.  An
:class:`IndexingPolicy` captures the decisions the paper attributes to Beagle
and GDL — depth cutoffs, per-kind size cutoffs, which kinds get full content
indexing versus attribute-only indexing — and :class:`DesktopSearchEngine`
turns a policy plus a generated image into:

* the set of files whose *content* was indexed (versus attribute-only or
  skipped entirely),
* an estimated index size, built from a simple postings model (terms ×
  per-posting overhead, plus per-file metadata records, plus an optional text
  cache), and
* an estimated indexing time (crawl + read + parse costs).

The absolute numbers are a model, but the *relative* behaviour across content
types and indexing options — which is all Figures 7 and 8 compare — follows
directly from the policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.image import FileSystemImage
from repro.namespace.tree import FileNode

__all__ = ["IndexingPolicy", "IndexingResult", "DesktopSearchEngine"]

MIB = 1024.0 * 1024.0


@dataclass(frozen=True)
class IndexingPolicy:
    """What a desktop search engine indexes and how.

    Attributes:
        name: engine name for reports.
        max_content_depth: do not index *content* of files deeper than this
            namespace depth (None = no limit).  GDL uses 10.
        size_cutoffs: per content-kind size cutoffs in bytes; files of that
            kind at or above the cutoff get attribute-only treatment.
        content_kinds: kinds whose content is indexed at all (others are
            attribute-only even below the cutoffs).
        index_directories: whether directories get index entries (Beagle's
            DisDir option turns this off).
        content_filtering: whether file content is parsed at all; when False
            only attributes are indexed (Beagle's DisFilter option).
        text_cache: store a snippet cache of every indexed document (Beagle's
            TextCache option) — increases index size substantially.
        bytes_per_posting: index bytes per distinct term occurrence.
        attribute_record_bytes: index bytes per file for metadata/attributes.
        directory_record_bytes: index bytes per directory entry.
        text_terms_per_kb: distinct terms per KiB of text content.
        binary_terms_per_kb: distinct terms per KiB of binary content the
            engine manages to extract (GDL extracts strings from binaries, so
            its value is non-zero and larger than Beagle's).
        text_cache_fraction: fraction of text bytes copied into the text
            cache when ``text_cache`` is enabled.
        crawl_ms_per_directory: crawl CPU cost per directory.
        read_ms_per_mb: cost of reading one MiB of file data.
        parse_ms_per_mb: cost of parsing one MiB of indexed content.
    """

    name: str
    max_content_depth: int | None = None
    size_cutoffs: Mapping[str, int] = field(default_factory=dict)
    content_kinds: tuple[str, ...] = ("text", "html", "script", "document")
    index_directories: bool = True
    content_filtering: bool = True
    text_cache: bool = False
    bytes_per_posting: float = 14.0
    attribute_record_bytes: float = 220.0
    directory_record_bytes: float = 180.0
    text_terms_per_kb: float = 18.0
    binary_terms_per_kb: float = 0.0
    text_cache_fraction: float = 0.25
    crawl_ms_per_directory: float = 0.4
    read_ms_per_mb: float = 11.0
    parse_ms_per_mb: float = 30.0

    def with_options(self, **overrides) -> "IndexingPolicy":
        """A copy of this policy with fields replaced (used for Beagle options)."""
        return replace(self, **overrides)


@dataclass
class IndexingResult:
    """Outcome of indexing one image with one policy."""

    policy_name: str
    files_seen: int
    files_content_indexed: int
    files_attribute_only: int
    files_skipped: int
    directories_indexed: int
    index_size_bytes: float
    indexing_time_ms: float
    fs_size_bytes: int

    @property
    def index_to_fs_ratio(self) -> float:
        """Index size / file-system size — the y-axis of Figure 7."""
        if self.fs_size_bytes == 0:
            return 0.0
        return self.index_size_bytes / self.fs_size_bytes

    @property
    def content_coverage(self) -> float:
        """Fraction of files whose content made it into the index."""
        if self.files_seen == 0:
            return 0.0
        return self.files_content_indexed / self.files_seen


class DesktopSearchEngine:
    """A policy-driven desktop search indexer."""

    def __init__(self, policy: IndexingPolicy) -> None:
        self._policy = policy

    @property
    def policy(self) -> IndexingPolicy:
        return self._policy

    # Per-file decisions -----------------------------------------------------

    def indexes_content_of(self, file_node: FileNode) -> bool:
        """Whether this engine indexes the *content* of the given file."""
        policy = self._policy
        if not policy.content_filtering:
            return False
        if policy.max_content_depth is not None and file_node.depth > policy.max_content_depth:
            return False
        kind = file_node.content_kind
        if kind not in policy.content_kinds and policy.binary_terms_per_kb <= 0:
            return False
        cutoff = policy.size_cutoffs.get(kind)
        if cutoff is not None and file_node.size >= cutoff:
            return False
        return True

    def index(self, image: FileSystemImage) -> IndexingResult:
        """Index a generated image and model the resulting index."""
        policy = self._policy
        tree = image.tree

        index_size = 0.0
        time_ms = 0.0
        content_indexed = 0
        attribute_only = 0
        skipped = 0

        directories = tree.directory_count
        time_ms += directories * policy.crawl_ms_per_directory
        directories_indexed = 0
        if policy.index_directories:
            directories_indexed = directories
            index_size += directories * policy.directory_record_bytes

        for file_node in tree.files:
            # Every file the crawler sees costs an attribute record.
            index_size += policy.attribute_record_bytes
            if self.indexes_content_of(file_node):
                content_indexed += 1
                index_size += self._content_index_bytes(file_node, image)
                megabytes = file_node.size / MIB
                time_ms += megabytes * (policy.read_ms_per_mb + policy.parse_ms_per_mb)
            elif self._is_visible(file_node):
                attribute_only += 1
                time_ms += 0.05
            else:
                skipped += 1

        return IndexingResult(
            policy_name=policy.name,
            files_seen=tree.file_count,
            files_content_indexed=content_indexed,
            files_attribute_only=attribute_only,
            files_skipped=skipped,
            directories_indexed=directories_indexed,
            index_size_bytes=index_size,
            indexing_time_ms=time_ms,
            fs_size_bytes=tree.total_bytes,
        )

    # Internal helpers ---------------------------------------------------------

    def _is_visible(self, file_node: FileNode) -> bool:
        policy = self._policy
        if policy.max_content_depth is not None and file_node.depth > policy.max_content_depth:
            return False
        return True

    def _content_index_bytes(self, file_node: FileNode, image: FileSystemImage) -> float:
        policy = self._policy
        kind = file_node.content_kind
        kib = file_node.size / 1024.0
        if kind in policy.content_kinds:
            terms = kib * policy.text_terms_per_kb
            # Degenerate content (single repeated word) collapses the postings
            # list: ask the content generator for its unique-word estimate.
            if image.content_generator is not None:
                unique = image.content_generator.unique_word_estimate(file_node.size)
                terms = min(terms, unique)
            size = terms * policy.bytes_per_posting
            if policy.text_cache:
                size += file_node.size * policy.text_cache_fraction
            return size
        # Non-text content: only engines with a binary term rate extract here.
        terms = kib * policy.binary_terms_per_kb
        return terms * policy.bytes_per_posting
