"""Simulated recursive content search (``grep -r``).

Unlike ``find``, grep reads every file's data, so its cost depends on file
sizes, content type (binary files can be skipped after a sniff) and the
on-disk layout of file data (fragmented files need more seeks).  The paper
uses grep as its second motivating example: "the time taken for a grep
operation to search for a keyword also depends on the type of files (i.e.,
binary vs. others) and the file content."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.image import FileSystemImage
from repro.workloads.cache import BufferCache

__all__ = ["GrepCostModel", "GrepResult", "GrepSimulator"]


@dataclass(frozen=True)
class GrepCostModel:
    """Cost constants of the grep simulator."""

    #: CPU cost of scanning one megabyte of text for the pattern.
    scan_cpu_ms_per_mb: float = 4.0
    #: CPU cost of the binary sniff that lets grep skip a binary file.
    binary_sniff_cpu_ms: float = 0.01
    #: whether binary files are skipped after the sniff (GNU grep behaviour).
    skip_binary: bool = True
    #: CPU cost of reading a cached megabyte (memory copy only).
    cached_read_cpu_ms_per_mb: float = 0.25


@dataclass
class GrepResult:
    elapsed_ms: float
    files_scanned: int
    files_skipped_binary: int
    bytes_read: int
    cache_hit_ratio: float


class GrepSimulator:
    """Simulates ``grep -r pattern /`` over a generated image."""

    def __init__(
        self,
        image: FileSystemImage,
        cache: BufferCache | None = None,
        cost_model: GrepCostModel | None = None,
    ) -> None:
        self._image = image
        self._cache = cache if cache is not None else BufferCache()
        self._costs = cost_model or GrepCostModel()

    @property
    def cache(self) -> BufferCache:
        return self._cache

    def warm_cache(self) -> None:
        """Load every file's data into the cache (unbounded caches only make
        sense for small images; callers can pass a budgeted cache instead)."""
        items = {f"data:{file.path()}": file.size for file in self._image.tree.files}
        self._cache.warm(items)

    def run(self) -> GrepResult:
        costs = self._costs
        disk = self._image.disk
        elapsed = 0.0
        scanned = 0
        skipped = 0
        bytes_read = 0

        for file_node in self._image.tree.files:
            is_binary = file_node.content_kind in ("binary", "image", "audio", "video", "archive")
            if is_binary and costs.skip_binary:
                elapsed += costs.binary_sniff_cpu_ms
                skipped += 1
                continue
            key = f"data:{file_node.path()}"
            megabytes = file_node.size / (1024.0 * 1024.0)
            if self._cache.access(key, file_node.size):
                elapsed += megabytes * costs.cached_read_cpu_ms_per_mb
            else:
                if disk is not None and disk.has_file(file_node.path()):
                    elapsed += disk.read_time_ms(file_node.path())
                else:
                    elapsed += 12.0 + megabytes * 10.0
            elapsed += megabytes * costs.scan_cpu_ms_per_mb
            bytes_read += file_node.size
            scanned += 1

        return GrepResult(
            elapsed_ms=elapsed,
            files_scanned=scanned,
            files_skipped_binary=skipped,
            bytes_read=bytes_read,
            cache_hit_ratio=self._cache.hit_ratio(),
        )
