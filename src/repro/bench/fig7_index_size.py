"""Figure 7 — impact of file content on index size (Beagle vs GDL).

All file-system distributions are kept constant; only the content changes —
either every file holds text with a single repeated word, text from the
default word model, or binary data.  The paper's observation: content changes
even the *relative ordering* of index sizes between the two engines (Beagle's
index is larger for word-model text, GDL's is larger for binary, because GDL
extracts strings from binaries and Beagle does not).  Index size is reported
relative to the file-system size, on the order of 0.01–0.1.
"""

from __future__ import annotations

from repro.bench.common import format_rows, scaled_default_config
from repro.content.generators import ContentPolicy
from repro.core.impressions import Impressions
from repro.workloads.search.beagle import BeagleSearchEngine
from repro.workloads.search.gdl import GoogleDesktopSearchEngine

__all__ = ["run", "format_table", "CONTENT_SCENARIOS"]

#: The three content scenarios of Figure 7: label → (text model, forced kind).
CONTENT_SCENARIOS = {
    "Text (1 Word)": ("single-word", "text"),
    "Text (Model)": ("hybrid", "text"),
    "Binary": ("hybrid", "binary"),
}


def run(scale: float = 0.1, seed: int = 42) -> dict:
    """Index each content scenario with both engines and report size ratios."""
    results: dict[str, dict[str, dict]] = {}
    for label, (text_model, forced_kind) in CONTENT_SCENARIOS.items():
        config = scaled_default_config(
            scale=scale,
            seed=seed,
            generate_content=True,
            content=ContentPolicy(text_model=text_model, force_kind=forced_kind),
        )
        image = Impressions(config).generate()
        beagle_result = BeagleSearchEngine().index(image)
        gdl_result = GoogleDesktopSearchEngine().index(image)
        results[label] = {
            "beagle": {
                "index_to_fs_ratio": beagle_result.index_to_fs_ratio,
                "index_size_bytes": beagle_result.index_size_bytes,
                "indexing_time_ms": beagle_result.indexing_time_ms,
            },
            "gdl": {
                "index_to_fs_ratio": gdl_result.index_to_fs_ratio,
                "index_size_bytes": gdl_result.index_size_bytes,
                "indexing_time_ms": gdl_result.indexing_time_ms,
            },
            "fs_size_bytes": image.total_bytes,
        }
    return {"scenarios": results, "scale": scale}


def format_table(result: dict) -> str:
    rows = []
    for label, data in result["scenarios"].items():
        rows.append(
            [
                label,
                data["beagle"]["index_to_fs_ratio"],
                data["gdl"]["index_to_fs_ratio"],
                "Beagle" if data["beagle"]["index_to_fs_ratio"] > data["gdl"]["index_to_fs_ratio"] else "GDL",
            ]
        )
    return format_rows(
        ["content", "Beagle index/FS", "GDL index/FS", "larger index"],
        rows,
        title="Figure 7: index size / FS size by content type",
    )
