"""Figure 6 — debunking application assumptions.

Measures, on a representative generated image, how much content each
documented Beagle/GDL cutoff fails to index.  Paper values for context:

* GDL   file content < 10 deep     → 10% of files, 5% of bytes missed
* GDL   text file sizes < 200 KB   → 13% of files, 90% of bytes missed
* Beagle text file cutoff < 5 MB   → 0.13% of files, 71% of bytes missed
* Beagle archive files < 10 MB     → 4% of files, 84% of bytes missed
* Beagle shell scripts < 20 KB     → 20% of files, 89% of bytes missed
"""

from __future__ import annotations

from repro.bench.common import format_rows, scaled_default_config
from repro.core.impressions import Impressions
from repro.workloads.search.assumptions import evaluate_assumptions

__all__ = ["run", "format_table", "PAPER_REFERENCE"]

PAPER_REFERENCE = {
    "GDL depth": {"files": 0.10, "bytes": 0.05},
    "GDL text size": {"files": 0.13, "bytes": 0.90},
    "Beagle text size": {"files": 0.0013, "bytes": 0.71},
    "Beagle archive size": {"files": 0.04, "bytes": 0.84},
    "Beagle script size": {"files": 0.20, "bytes": 0.89},
}


def run(scale: float = 0.2, seed: int = 42) -> dict:
    """Generate a representative image and evaluate every assumption on it."""
    image = Impressions(scaled_default_config(scale=scale, seed=seed)).generate()
    reports = evaluate_assumptions(image)
    return {
        "image_summary": image.summary(),
        "assumptions": [
            {
                "application": report.application,
                "parameter": report.parameter,
                "missed_file_fraction": report.missed_file_fraction,
                "missed_byte_fraction": report.missed_byte_fraction,
                "affected_files": report.affected_files,
                "missed_files": report.missed_files,
            }
            for report in reports
        ],
    }


def format_table(result: dict) -> str:
    rows = [
        [
            entry["application"],
            entry["parameter"],
            f"{entry['missed_file_fraction']:.2%}",
            f"{entry['missed_byte_fraction']:.2%}",
        ]
        for entry in result["assumptions"]
    ]
    return format_rows(
        ["app", "parameter & value", "files missed", "bytes missed"],
        rows,
        title="Figure 6: content not indexed because of application assumptions",
    )
