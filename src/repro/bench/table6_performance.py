"""Table 6 — performance of Impressions.

Time to create two images with the per-feature breakdown the paper reports:

* Image1: 4.55 GB, 20 000 files, 4 000 directories;
* Image2: 12.0 GB, 52 000 files, 4 000 directories;

plus two optional rows for Image1 only: file content with the hybrid word
model, and creating a fragmented layout (score 0.98).  Absolute times depend
on the machine and on the fact that our on-disk creation is simulated; the
breakdown (on-disk creation dominating, content being the next biggest cost)
is the part to compare.
"""

from __future__ import annotations

from repro.bench.common import format_rows
from repro.content.generators import ContentPolicy
from repro.core.config import GIB, ImpressionsConfig
from repro.core.impressions import Impressions

__all__ = ["run", "format_table", "PAPER_REFERENCE"]

#: The paper's Table 6 (seconds) for context in EXPERIMENTS.md.
PAPER_REFERENCE = {
    "image1_total_s": 473.20,
    "image2_total_s": 1826.12,
    "image1_content_hybrid_s": 791.20,
    "image1_layout_098_s": 133.96,
}


def _image1_config(scale: float, seed: int) -> ImpressionsConfig:
    return ImpressionsConfig(
        fs_size_bytes=max(int(4.55 * GIB * scale), 8 * 1024 * 1024),
        num_files=max(int(20_000 * scale), 50),
        num_directories=max(int(4_000 * scale), 10),
        seed=seed,
    )


def _image2_config(scale: float, seed: int) -> ImpressionsConfig:
    return ImpressionsConfig(
        fs_size_bytes=max(int(12.0 * GIB * scale), 8 * 1024 * 1024),
        num_files=max(int(52_000 * scale), 50),
        num_directories=max(int(4_000 * scale), 10),
        seed=seed,
    )


def run(scale: float = 0.05, seed: int = 42, include_content_row: bool = True) -> dict:
    """Generate both images (scaled) and collect the per-phase timings."""
    image1 = Impressions(_image1_config(scale, seed)).generate()
    image2 = Impressions(_image2_config(scale, seed)).generate()
    timings1 = image1.extras["timings"].as_dict()
    timings2 = image2.extras["timings"].as_dict()

    extra_rows: dict[str, float] = {}
    if include_content_row:
        content_config = _image1_config(scale, seed).with_overrides(
            generate_content=True, content=ContentPolicy(text_model="hybrid")
        )
        content_image = Impressions(content_config).generate()
        # Content is generated lazily; charge the cost of materialising every
        # text file's bytes once, which is what the paper's content row times.
        import time

        start = time.perf_counter()
        text_bytes = 0
        for file_node in content_image.tree.files:
            if file_node.content_kind in ("text", "html", "script", "document"):
                text_bytes += len(content_image.file_content(file_node))
        extra_rows["image1_content_hybrid_s"] = time.perf_counter() - start
        extra_rows["image1_content_bytes"] = float(text_bytes)

        fragmented_config = _image1_config(scale, seed).with_overrides(layout_score=0.98)
        fragmented = Impressions(fragmented_config).generate()
        extra_rows["image1_layout_098_s"] = fragmented.extras["timings"].as_dict()["on_disk_creation"]
        extra_rows["image1_layout_098_score"] = fragmented.achieved_layout_score()

    return {
        "scale": scale,
        "image1": {"summary": image1.summary(), "timings_s": timings1},
        "image2": {"summary": image2.summary(), "timings_s": timings2},
        "extra": extra_rows,
    }


def format_table(result: dict) -> str:
    phases = [
        ("Directory structure", "directory_structure"),
        ("File sizes distribution", "file_sizes"),
        ("Popular extensions", "extensions"),
        ("File with depth / placement", "depth_and_placement"),
        ("File content (probe)", "content"),
        ("On-disk file/dir creation", "on_disk_creation"),
        ("Total time", "total"),
    ]
    rows = [
        [label, result["image1"]["timings_s"][key], result["image2"]["timings_s"][key]]
        for label, key in phases
    ]
    table = format_rows(
        ["FS distribution (Default)", "Image1 (s)", "Image2 (s)"],
        rows,
        title=f"Table 6: performance of Impressions (scale={result['scale']:g})",
    )
    if result["extra"]:
        extra_rows = [[key, value] for key, value in result["extra"].items()]
        table += "\n\n" + format_rows(["additional parameter", "value"], extra_rows)
    return table
