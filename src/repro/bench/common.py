"""Shared helpers for the experiment drivers."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.config import GIB, ImpressionsConfig

__all__ = [
    "scaled_default_config",
    "format_rows",
    "PAPER_DEFAULT_FILES",
    "PAPER_DEFAULT_DIRS",
    "PAPER_DEFAULT_BYTES",
]

#: The paper's evaluation image (Image1 of Table 6): 4.55 GB, 20 000 files,
#: 4 000 directories.
PAPER_DEFAULT_BYTES = int(4.55 * GIB)
PAPER_DEFAULT_FILES = 20_000
PAPER_DEFAULT_DIRS = 4_000


def scaled_default_config(scale: float = 0.1, seed: int = 42, **overrides) -> ImpressionsConfig:
    """The paper's default image configuration scaled by ``scale``.

    ``scale`` is a dimensionless multiplier on the paper's evaluation image
    (Image1 of Table 6: 4.55 GB, 20 000 files, 4 000 directories): the file
    count, directory count, and target byte size are all multiplied by it.
    ``scale=1.0`` is the paper-sized image, ``scale=0.1`` a tenth of it, and
    values above 1.0 scale the image up.  Floors of 50 files / 10 directories
    / 16 MiB keep the sampled distributions meaningful at tiny scales.

    Raises:
        ValueError: when ``scale`` is zero or negative (catching it here
            beats the opaque numpy error it used to trigger mid-generation).
    """
    if not math.isfinite(scale) or scale <= 0.0:
        raise ValueError(f"scale must be a positive finite multiplier, got {scale!r}")
    config = ImpressionsConfig(
        fs_size_bytes=max(int(PAPER_DEFAULT_BYTES * scale), 16 * 1024 * 1024),
        num_files=max(int(PAPER_DEFAULT_FILES * scale), 50),
        num_directories=max(int(PAPER_DEFAULT_DIRS * scale), 10),
        seed=seed,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def format_rows(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table (what the benches print)."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(widths[index]) for index, value in enumerate(row)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], title: str | None = None) -> str:
    """Render a {name: value} mapping as a two-column table."""
    return format_rows(["parameter", "value"], [[k, v] for k, v in mapping.items()], title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
