"""Figure 5 / Table 5 — accuracy of interpolation and extrapolation.

The known curves (10/50/100 GB) are used to *interpolate* the 75 GB curve and
*extrapolate* the 125 GB curve; both are compared against the actual held-out
curves for those sizes (which the paper removed from its dataset, and which we
synthesise independently).  Table 5 reports the two-sample K-S statistic for
each generated curve at the 0.05 significance level — expected D values around
0.05–0.11, all passing.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import format_rows
from repro.bench.fig4_interpolation import KNOWN_SIZES_GIB
from repro.dataset.synthetic import SyntheticDatasetBuilder
from repro.stats.goodness_of_fit import ks_test_two_sample, mdcc_from_fractions
from repro.stats.interpolation import BinnedDistribution, PiecewiseInterpolator

__all__ = ["run", "format_table", "PAPER_REFERENCE"]

#: Table 5 values from the paper.
PAPER_REFERENCE = {
    ("files_by_count", 75.0): 0.054,
    ("files_by_count", 125.0): 0.081,
    ("files_by_bytes", 75.0): 0.105,
    ("files_by_bytes", 125.0): 0.105,
}


def run(
    interpolation_target_gib: float = 75.0,
    extrapolation_target_gib: float = 125.0,
    max_files_per_snapshot: int = 4_000,
    seed: int = 2009,
    significance: float = 0.05,
) -> dict:
    """Interpolate/extrapolate both file-size views and score them."""
    builder = SyntheticDatasetBuilder(seed=seed)
    sizes = list(KNOWN_SIZES_GIB) + [interpolation_target_gib, extrapolation_target_gib]
    corpus = builder.build_corpus(sizes, max_files_per_snapshot=max_files_per_snapshot)

    results: dict[str, dict] = {}
    for view, by_bytes in (("files_by_count", False), ("files_by_bytes", True)):
        known_curves = {
            size: BinnedDistribution.from_values(corpus[size].file_sizes(), by_bytes=by_bytes)
            for size in KNOWN_SIZES_GIB
        }
        interpolator = PiecewiseInterpolator(known_curves)
        view_results = {}
        for target, region in (
            (interpolation_target_gib, "I"),
            (extrapolation_target_gib, "E"),
        ):
            generated = interpolator.interpolate(target)
            actual_sizes = np.asarray(corpus[target].file_sizes(), dtype=float)
            actual = BinnedDistribution.from_values(actual_sizes, by_bytes=by_bytes)
            width = max(generated.num_bins, actual.num_bins)
            generated_padded = generated.resized(width).normalised()
            actual_padded = actual.resized(width).normalised()
            mdcc = mdcc_from_fractions(generated_padded.fractions, actual_padded.fractions)
            # The K-S test compares like with like: for the bytes-weighted view
            # the reference sample is a byte-weighted resample of the actual
            # sizes, matching what the generated curve models.
            if by_bytes:
                weights = actual_sizes / actual_sizes.sum()
                reference_sample = np.random.default_rng(seed + 1).choice(
                    actual_sizes, size=actual_sizes.size, p=weights
                )
            else:
                reference_sample = actual_sizes
            ks = ks_test_two_sample(
                _synthesize_sample_from_bins(generated_padded, len(actual_sizes), seed),
                reference_sample,
                significance=significance,
            )
            view_results[target] = {
                "region": region,
                "mdcc": mdcc,
                "ks_statistic": ks.statistic,
                "ks_passed": ks.passed,
                "generated_fractions": generated_padded.fractions.tolist(),
                "actual_fractions": actual_padded.fractions.tolist(),
            }
        results[view] = view_results
    return {
        "known_sizes_gib": list(KNOWN_SIZES_GIB),
        "significance": significance,
        "results": results,
    }


def format_table(result: dict) -> str:
    rows = []
    for view, per_target in result["results"].items():
        for target, stats in per_target.items():
            paper = PAPER_REFERENCE.get((view, float(target)), "-")
            rows.append(
                [
                    view,
                    f"{target:g} GB ({stats['region']})",
                    stats["ks_statistic"],
                    "passed" if stats["ks_passed"] else "failed",
                    stats["mdcc"],
                    paper,
                ]
            )
    return format_rows(
        ["distribution", "FS region", "K-S D", f"K-S test ({result['significance']})", "MDCC", "paper D"],
        rows,
        title="Figure 5 / Table 5: interpolation and extrapolation accuracy",
    )


def _synthesize_sample_from_bins(curve: BinnedDistribution, size: int, seed: int) -> np.ndarray:
    """Draw a sample whose histogram matches a binned curve (for the K-S test).

    Within each power-of-two bin values are drawn log-uniformly, which is the
    natural smoothing assumption for power-of-two binned data.
    """
    rng = np.random.default_rng(seed)
    fractions = np.asarray(curve.fractions, dtype=float)
    fractions = fractions / fractions.sum()
    counts = rng.multinomial(size, fractions)
    samples: list[np.ndarray] = []
    for bin_index, count in enumerate(counts):
        if count == 0:
            continue
        low = max(curve.edges[bin_index], 1.0)
        high = max(curve.edges[bin_index + 1], low + 1.0)
        samples.append(np.exp(rng.uniform(np.log(low), np.log(high), size=count)))
    if not samples:
        return np.asarray([1.0])
    return np.concatenate(samples)
