"""Experiment drivers for every table and figure in the paper.

Each module exposes a ``run(...)`` function returning a plain dictionary of
results and a ``format_table(result)`` helper that renders the same rows /
series the paper reports.  The pytest-benchmark suite under ``benchmarks/``
wraps these drivers; the examples reuse them for human-readable output.

Scale note: the paper's evaluation images (4.55 GB / 20 000 files) take
minutes to generate.  Every driver takes a ``scale`` parameter in ``(0, 1]``
that shrinks the image proportionally while keeping every distribution and
code path identical, so the benchmark suite completes in a few minutes and the
shapes of the results are preserved.  Pass ``scale=1.0`` to reproduce the
paper-sized runs.
"""

from repro.bench import (  # noqa: F401  (re-exported for convenience)
    ablations,
    fig1_find,
    fig2_accuracy,
    fig3_constraints,
    fig4_interpolation,
    fig5_interpolation,
    fig6_assumptions,
    fig7_index_size,
    fig8_beagle_options,
    table1_prior_work,
    table3_mdcc,
    table4_constraints,
    table6_performance,
    trace_replay,
)

__all__ = [
    "fig1_find",
    "fig2_accuracy",
    "fig3_constraints",
    "fig4_interpolation",
    "fig5_interpolation",
    "fig6_assumptions",
    "fig7_index_size",
    "fig8_beagle_options",
    "table1_prior_work",
    "table3_mdcc",
    "table4_constraints",
    "table6_performance",
    "trace_replay",
    "ablations",
]
