"""Table 4 — summary of resolving multiple constraints.

For 1000 files drawn from lognormal(µ=8.16, σ=2.46) and desired sums of
30 000, 60 000 and 90 000 bytes, the paper reports (over 20 trials): the
initial and final relative sum error β, the oversampling rate α, the K-S D
statistic of the constrained sample against the original distribution, and the
fraction of successful trials.  Expected shape: initial β of tens of percent,
final β of a few percent, α under ~10% except for the hard 90 K case, success
rate 90–100%.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import format_rows
from repro.bench.fig3_constraints import EXAMPLE_MU, EXAMPLE_SIGMA
from repro.constraints.resolver import ConstraintResolver, ConstraintSpec, summarize_trials
from repro.stats.distributions import LognormalDistribution

__all__ = ["run", "format_table", "PAPER_REFERENCE"]

#: The paper's Table 4 rows (desired sum → selected columns) for comparison.
PAPER_REFERENCE = {
    30_000: {"initial_beta": 0.2155, "final_beta": 0.0204, "alpha": 0.0574, "success": 1.00},
    60_000: {"initial_beta": 0.2001, "final_beta": 0.0311, "alpha": 0.0489, "success": 1.00},
    90_000: {"initial_beta": 0.3435, "final_beta": 0.0400, "alpha": 0.4120, "success": 0.90},
}


def run(
    target_sums: tuple[float, ...] = (30_000.0, 60_000.0, 90_000.0),
    num_files: int = 1_000,
    trials: int = 20,
    beta: float = 0.05,
    seed: int = 42,
) -> dict:
    """Run the Table 4 sweep and aggregate per-target statistics."""
    distribution = LognormalDistribution(mu=EXAMPLE_MU, sigma=EXAMPLE_SIGMA)
    rows: dict[float, dict] = {}
    for target in target_sums:
        results = []
        for trial in range(trials):
            rng = np.random.default_rng(seed + trial)
            spec = ConstraintSpec(
                num_values=num_files,
                target_sum=target,
                distribution=distribution,
                beta=beta,
                max_oversampling_factor=1.0,
            )
            results.append(ConstraintResolver(spec, rng).resolve())
        rows[target] = summarize_trials(results, beta_threshold=beta)
    return {
        "num_files": num_files,
        "trials": trials,
        "beta": beta,
        "distribution": {"mu": EXAMPLE_MU, "sigma": EXAMPLE_SIGMA},
        "rows": rows,
    }


def format_table(result: dict) -> str:
    rows = []
    for target, summary in result["rows"].items():
        rows.append(
            [
                int(target),
                f"{summary['avg_initial_beta']:.2%}",
                f"{summary['avg_final_beta']:.2%}",
                f"{summary['avg_alpha']:.2%}",
                f"{summary['avg_ks_d']:.3f}",
                f"{summary['success_rate']:.0%}",
            ]
        )
    return format_rows(
        ["desired sum S", "avg beta initial", "avg beta final", "avg alpha", "avg K-S D", "success"],
        rows,
        title=(
            f"Table 4: resolving multiple constraints "
            f"({result['num_files']} files, {result['trials']} trials)"
        ),
    )
