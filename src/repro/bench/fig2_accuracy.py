"""Figure 2 — accuracy of Impressions in recreating file-system properties.

The paper compares the distributions of a generated image (G) against the
desired distributions from the dataset (D) for eight properties:

  (a) directories by namespace depth        (e) top extensions by count
  (b) directories by subdirectory count     (f) files by namespace depth
  (c) files by size                         (g) mean bytes per file by depth
  (d) bytes by containing file size         (h) files by depth w/ special dirs

Offline, the "desired" side comes from a synthetic dataset snapshot built from
the same published default models (see DESIGN.md) with an *independent* seed,
so the comparison measures how faithfully the generation pipeline reproduces
its target distributions — the same question the paper's figure answers.
"""

from __future__ import annotations

from repro.bench.common import format_rows, scaled_default_config
from repro.core.impressions import Impressions
from repro.dataset.study import DistributionSet, analyze_image, analyze_snapshot, compare_distribution_sets
from repro.dataset.synthetic import DatasetScale, SyntheticDatasetBuilder

__all__ = ["run", "format_table", "build_desired_and_generated"]


def build_desired_and_generated(
    scale: float = 0.1, seed: int = 42
) -> tuple[DistributionSet, DistributionSet]:
    """Build the (desired, generated) distribution-set pair at a given scale."""
    config = scaled_default_config(scale=scale, seed=seed)
    generated_image = Impressions(config).generate()
    generated = analyze_image(generated_image, label="generated")

    # The desired corpus uses exactly the published default distributions
    # (no capacity-dependent µ shift — that twist only matters for the
    # interpolation experiments of Figures 4/5).
    builder = SyntheticDatasetBuilder(
        scale=DatasetScale(mu_shift_per_doubling=0.0), seed=seed + 10_000
    )
    capacity_gib = (config.fs_size_bytes or 0) / (1024.0**3)
    snapshot = builder.build_snapshot(
        capacity_gib=max(capacity_gib, 0.05),
        max_files=config.resolved_num_files(),
        hostname="desired-dataset",
    )
    desired = analyze_snapshot(snapshot, label="desired")
    return desired, generated


def run(scale: float = 0.1, seed: int = 42) -> dict:
    """Generate one image, analyse it, and compare against the desired curves."""
    desired, generated = build_desired_and_generated(scale=scale, seed=seed)
    mdcc = compare_distribution_sets(desired, generated)

    desired_sizes, generated_sizes = desired.file_size_histogram.aligned_with(
        generated.file_size_histogram
    )
    return {
        "mdcc": mdcc,
        "desired": {
            "directories_by_depth": desired.directories_by_depth_fractions().tolist(),
            "files_by_depth": desired.files_by_depth_fractions().tolist(),
            "files_by_size": desired_sizes.count_fractions().tolist(),
            "bytes_by_size": desired_sizes.byte_fractions().tolist(),
            "extension_shares": dict(desired.extension_shares),
            "mean_bytes_by_depth": dict(desired.mean_bytes_by_depth),
        },
        "generated": {
            "directories_by_depth": generated.directories_by_depth_fractions().tolist(),
            "files_by_depth": generated.files_by_depth_fractions().tolist(),
            "files_by_size": generated_sizes.count_fractions().tolist(),
            "bytes_by_size": generated_sizes.byte_fractions().tolist(),
            "extension_shares": dict(generated.extension_shares),
            "mean_bytes_by_depth": dict(generated.mean_bytes_by_depth),
        },
        "totals": {
            "desired_files": desired.total_files,
            "generated_files": generated.total_files,
            "desired_bytes": desired.total_bytes,
            "generated_bytes": generated.total_bytes,
        },
    }


def format_table(result: dict) -> str:
    rows = [[parameter, value] for parameter, value in result["mdcc"].items()]
    table = format_rows(
        ["parameter", "MDCC (D vs G)"],
        rows,
        title="Figure 2: accuracy of generated vs desired distributions",
    )
    depth_rows = []
    desired_depths = result["desired"]["files_by_depth"]
    generated_depths = result["generated"]["files_by_depth"]
    for depth, (d_value, g_value) in enumerate(zip(desired_depths, generated_depths)):
        depth_rows.append([depth, d_value, g_value])
    depth_table = format_rows(
        ["depth", "desired %files", "generated %files"],
        depth_rows,
        title="Figure 2(f): files by namespace depth",
    )
    return table + "\n\n" + depth_table
