"""Figure 4 — piecewise interpolation of file sizes.

Illustrates the mechanism: starting from the bytes-by-file-size curves of
10 GB, 50 GB and 100 GB file systems, each power-of-two bin is treated as an
individual interpolation segment and the composite interpolated curve for an
intermediate size is assembled from the per-segment results.
"""

from __future__ import annotations

from repro.bench.common import format_rows
from repro.dataset.synthetic import SyntheticDatasetBuilder
from repro.stats.interpolation import BinnedDistribution, PiecewiseInterpolator

__all__ = ["run", "format_table", "KNOWN_SIZES_GIB"]

KNOWN_SIZES_GIB = (10.0, 50.0, 100.0)


def run(
    target_size_gib: float = 75.0,
    max_files_per_snapshot: int = 4_000,
    seed: int = 2009,
    by_bytes: bool = True,
) -> dict:
    """Build the known curves, interpolate the target, and expose the segments."""
    builder = SyntheticDatasetBuilder(seed=seed)
    corpus = builder.build_corpus(list(KNOWN_SIZES_GIB), max_files_per_snapshot=max_files_per_snapshot)
    curves = {
        size: BinnedDistribution.from_values(snapshot.file_sizes(), by_bytes=by_bytes)
        for size, snapshot in corpus.items()
    }
    interpolator = PiecewiseInterpolator(curves)
    composite = interpolator.interpolate(target_size_gib)

    segments = {
        bin_index: interpolator.segment_values(bin_index).tolist()
        for bin_index in range(interpolator.num_bins)
    }
    return {
        "known_sizes_gib": list(KNOWN_SIZES_GIB),
        "target_size_gib": target_size_gib,
        "segments": segments,
        "composite_fractions": composite.fractions.tolist(),
        "num_bins": interpolator.num_bins,
        "by_bytes": by_bytes,
    }


def format_table(result: dict) -> str:
    rows = []
    for bin_index, values in result["segments"].items():
        composite = result["composite_fractions"][bin_index]
        if composite < 1e-6 and all(value < 1e-6 for value in values):
            continue
        rows.append([bin_index, *values, composite])
    headers = ["bin"] + [f"{size:g} GB" for size in result["known_sizes_gib"]] + [
        f"{result['target_size_gib']:g} GB (interpolated)"
    ]
    return format_rows(
        headers,
        rows,
        title="Figure 4: piecewise interpolation of the bytes-by-file-size curve",
    )
