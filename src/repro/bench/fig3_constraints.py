"""Figure 3 — resolving multiple constraints.

(a) Convergence of the sum of 1000 sampled file sizes to a desired file-system
    size of 90 000 bytes (each trial is one line; success = within the 5%
    error band before 1000 oversamples).
(b) Files-by-size distribution of the original vs the constrained sample.
(c) Same comparison weighted by bytes.

Unit reconciliation: the paper quotes a lognormal(µ=8.16, σ=2.46) file-size
distribution and says "the expected sum of 1000 file sizes ... is close to
60000", but a lognormal with those log-space parameters has a per-sample mean
of ~72 000, giving a 1000-sample sum of ~7.2·10⁷ — the quoted sums only work
if the sizes are expressed in KB-like units.  We keep σ=2.46 (which is what
controls the difficulty: the heavy tail) and rescale µ so that the expected
sum of 1000 samples is ≈60 000 in the same units as the 30 K/60 K/90 K
targets, preserving the experiment's structure exactly (targets at 0.5×, 1×
and 1.5× the expected sum).  See EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import format_rows
from repro.constraints.resolver import ConstraintResolver, ConstraintSpec
from repro.stats.distributions import LognormalDistribution
from repro.stats.histograms import PowerOfTwoHistogram

__all__ = ["run", "format_table", "EXAMPLE_MU", "EXAMPLE_SIGMA"]

#: σ straight from the paper; µ rescaled so E[sum of 1000 samples] ≈ 60 000
#: in the units of the 30 K/60 K/90 K targets (see module docstring):
#: µ = ln(60) − σ²/2 ≈ 1.07.
EXAMPLE_SIGMA = 2.46
EXAMPLE_MU = 1.07


def run(
    num_files: int = 1_000,
    target_sum: float = 90_000.0,
    beta: float = 0.05,
    trials: int = 5,
    seed: int = 42,
) -> dict:
    """Run several constraint-resolution trials and collect their traces."""
    distribution = LognormalDistribution(mu=EXAMPLE_MU, sigma=EXAMPLE_SIGMA)
    traces = []
    final_betas = []
    original_sample = None
    constrained_sample = None
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        spec = ConstraintSpec(
            num_values=num_files,
            target_sum=target_sum,
            distribution=distribution,
            beta=beta,
            max_oversampling_factor=1.0,
        )
        result = ConstraintResolver(spec, rng).resolve()
        traces.append(result.trace.sums)
        final_betas.append(result.final_beta)
        if result.converged and constrained_sample is None:
            constrained_sample = result.values
            original_sample = distribution.sample(np.random.default_rng(seed + trial + 500), num_files)

    if constrained_sample is None:
        # No trial converged (possible at extreme targets): fall back to the
        # best effort of the last trial so the histograms still render.
        rng = np.random.default_rng(seed)
        constrained_sample = distribution.sample(rng, num_files)
        original_sample = distribution.sample(rng, num_files)

    original_hist = PowerOfTwoHistogram.from_values(original_sample)
    constrained_hist = PowerOfTwoHistogram.from_values(constrained_sample)
    original_hist, constrained_hist = original_hist.aligned_with(constrained_hist)

    return {
        "target_sum": target_sum,
        "beta": beta,
        "traces": traces,
        "final_betas": final_betas,
        "converged_fraction": float(np.mean([b <= beta for b in final_betas])),
        "original_files_by_size": original_hist.count_fractions().tolist(),
        "constrained_files_by_size": constrained_hist.count_fractions().tolist(),
        "original_bytes_by_size": original_hist.byte_fractions().tolist(),
        "constrained_bytes_by_size": constrained_hist.byte_fractions().tolist(),
        "bin_labels": original_hist.bin_labels(),
    }


def format_table(result: dict) -> str:
    trace_rows = []
    for index, trace in enumerate(result["traces"]):
        trace_rows.append(
            [
                f"trial {index}",
                trace[0],
                trace[-1],
                len(trace) - 1,
                f"{result['final_betas'][index]:.3%}",
            ]
        )
    convergence = format_rows(
        ["trial", "initial sum", "final sum", "oversamples", "final beta"],
        trace_rows,
        title=(
            f"Figure 3(a): convergence to desired sum {result['target_sum']:.0f} "
            f"(beta <= {result['beta']:.0%})"
        ),
    )
    histogram_rows = [
        [label, o, c]
        for label, o, c in zip(
            result["bin_labels"],
            result["original_files_by_size"],
            result["constrained_files_by_size"],
        )
        if o or c
    ]
    histograms = format_rows(
        ["size bin", "original %files", "constrained %files"],
        histogram_rows,
        title="Figure 3(b): original vs constrained distribution (files by size)",
    )
    return convergence + "\n\n" + histograms
