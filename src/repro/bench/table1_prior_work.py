"""Table 1 — choice of file-system parameters in prior research.

The paper's motivation table: thirteen published systems, the ad-hoc
file-system images they were evaluated on, and what the evaluation measured.
This is static data, reproduced verbatim so that the motivation example in the
README/EXPERIMENTS can cite it and so that the quickstart can contrast an
Impressions image description against the prior practice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.common import format_rows

__all__ = ["PriorWorkEntry", "PRIOR_WORK", "run", "format_table"]


@dataclass(frozen=True)
class PriorWorkEntry:
    paper: str
    description: str
    used_to_measure: str


PRIOR_WORK: tuple[PriorWorkEntry, ...] = (
    PriorWorkEntry(
        "HAC",
        "File system with 17000 files totaling 150 MB",
        "Time and space needed to create a Glimpse index",
    ),
    PriorWorkEntry(
        "IRON",
        "None provided",
        "Checksum and metadata replication overhead; parity block overhead for user files",
    ),
    PriorWorkEntry(
        "LBFS",
        "10702 files from /usr/local, total size 354 MB",
        "Performance of LBFS chunking algorithm",
    ),
    PriorWorkEntry(
        "LISFS",
        "633 MP3 files, 860 program files, 11502 man pages",
        "Disk space overhead; performance of search-like activities: UNIX find and LISFS lookup",
    ),
    PriorWorkEntry(
        "PAST",
        "2 million files, mean size 86 KB, median 4 KB, largest file size 2.7 GB, "
        "smallest 0 Bytes, total size 166.6 GB",
        "File insertion, global storage utilization in a P2P system",
    ),
    PriorWorkEntry(
        "Pastiche",
        "File system with 1641 files, 109 dirs, 13.4 MB total size",
        "Performance of backup and restore utilities",
    ),
    PriorWorkEntry(
        "Pergamum",
        "Randomly generated files of 'several' megabytes",
        "Data transfer performance",
    ),
    PriorWorkEntry(
        "Samsara",
        "File system with 1676 files and 13 MB total size",
        "Data transfer and querying performance, load during querying",
    ),
    PriorWorkEntry(
        "Segank",
        "5-deep directory tree, 5 subdirs and 10 8 KB files per directory",
        "Performance of Segank: volume update, creation of read-only snapshot, read from new snapshot",
    ),
    PriorWorkEntry(
        "SFS read-only",
        "1000 files distributed evenly across 10 directories and contain random data",
        "Single client/single server read performance",
    ),
    PriorWorkEntry(
        "TFS",
        "Files taken from /usr to get 'realistic' mix of file sizes",
        "Performance with varying contribution of space from local file systems",
    ),
    PriorWorkEntry(
        "WAFL backup",
        "188 GB and 129 GB volumes taken from the Engineering department",
        "Performance of physical and logical backup, and recovery strategies",
    ),
    PriorWorkEntry(
        "yFS",
        "Avg. file size 16 KB, avg. number of files per directory 64, random file names",
        "Performance under various benchmarks (file creation, deletion)",
    ),
)


def run() -> dict:
    """Return the table plus simple aggregate statistics about its entries."""
    with_full_description = sum(
        1 for entry in PRIOR_WORK if "None provided" not in entry.description
    )
    return {
        "entries": [
            {
                "paper": entry.paper,
                "description": entry.description,
                "used_to_measure": entry.used_to_measure,
            }
            for entry in PRIOR_WORK
        ],
        "num_entries": len(PRIOR_WORK),
        "with_description": with_full_description,
    }


def format_table(result: dict) -> str:
    rows = [
        [entry["paper"], entry["description"], entry["used_to_measure"]]
        for entry in result["entries"]
    ]
    return format_rows(
        ["paper", "description", "used to measure"],
        rows,
        title="Table 1: choice of file system parameters in prior research",
    )
