"""Ablation experiments for the design choices the paper calls out.

These go beyond the paper's headline tables and quantify the internal design
decisions Impressions motivates in the text:

* **Size model** — the simple lognormal-only model versus the hybrid
  lognormal + Pareto-tail model.  The paper notes the simple model "failed to
  account for the distribution of bytes by containing file size"; the ablation
  measures the bytes-by-size MDCC against the target mixture model for both.
* **Depth model** — the multiplicative (Poisson × mean-bytes affinity) depth
  model versus Poisson-only placement, scored on both the files-by-depth and
  bytes-by-depth criteria.
* **Subset-sum local improvement** — constraint resolution with and without
  the local-improvement phase of the subset-sum approximation (oversamples
  needed and final β).
* **Content models** — generation throughput and unique-word richness of the
  single-word / popularity / word-length / hybrid content models.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.common import format_rows
from repro.constraints.subset_sum import solve_fixed_size_subset_sum
from repro.content.wordmodel import (
    HybridWordModel,
    SingleWordModel,
    WordLengthFrequencyModel,
    WordPopularityModel,
)
from repro.core.config import ImpressionsConfig
from repro.core.impressions import Impressions
from repro.dataset.study import analyze_image
from repro.metadata.filesizes import default_file_size_by_bytes_model
from repro.stats.distributions import LognormalDistribution
from repro.stats.goodness_of_fit import mdcc_from_fractions
from repro.stats.histograms import PowerOfTwoHistogram

__all__ = [
    "run_size_model_ablation",
    "run_depth_model_ablation",
    "run_subset_sum_ablation",
    "run_content_model_ablation",
    "format_size_model_table",
    "format_depth_model_table",
    "format_subset_sum_table",
    "format_content_model_table",
]


# --- Size model ---------------------------------------------------------------


def run_size_model_ablation(num_files: int = 20_000, seed: int = 42) -> dict:
    """Hybrid vs simple lognormal size model (the paper's Figure 2(c)/(d) ablation).

    Each candidate model generates ``num_files`` file sizes.  The sample's
    files-by-size curve is scored against the desired count curve (the default
    hybrid model's analytical CDF), and its bytes-by-size curve against the
    desired bytes curve (the mixture-of-lognormals model of Table 2).  The
    paper's observation is that both candidates fit the count curve, but only
    the hybrid — with its Pareto tail of very large files — reproduces the
    bytes curve's heavy upper mode.
    """
    from repro.metadata.filesizes import (
        default_file_size_by_count_model,
        simple_lognormal_size_model,
    )

    count_target_model = default_file_size_by_count_model()
    bytes_target_model = default_file_size_by_bytes_model()

    candidates = {
        "hybrid": default_file_size_by_count_model(),
        "simple-lognormal": simple_lognormal_size_model(),
    }
    # Bins spanning 1 byte .. 1 TB: real file systems impose a finite maximum
    # file size, which also keeps the size-biased Pareto tail integrable.
    edges = np.asarray([0.0] + [float(2**exponent) for exponent in range(0, 41)])
    bytes_target = _bytes_bin_fractions(bytes_target_model, edges, direct_bytes_model=True)

    threshold = 512 * 1024 * 1024
    target_large_share = _share_above(edges, bytes_target, threshold)

    results = {}
    for label, model in candidates.items():
        sample = model.sample(np.random.default_rng(seed), num_files)
        hist = PowerOfTwoHistogram.from_values(sample, max_value=2**42)
        count_target = _count_bin_fractions(count_target_model, hist.edges)
        bytes_curve = _bytes_bin_fractions(model, edges)
        results[label] = {
            "files_by_size_mdcc": mdcc_from_fractions(count_target, hist.count_fractions()),
            "bytes_by_size_mdcc": mdcc_from_fractions(bytes_target, bytes_curve),
            # The paper's headline: what fraction of all bytes live in very
            # large (> 512 MB) files?  The desired curve puts a large share
            # there; the simple lognormal puts almost none.
            "bytes_above_512mb": _share_above(edges, bytes_curve, threshold),
            "target_bytes_above_512mb": target_large_share,
            "total_bytes": float(np.sum(sample)),
            "largest_file": float(np.max(sample)),
        }
    return results


def _share_above(edges: np.ndarray, fractions: np.ndarray, threshold: float) -> float:
    """Fraction of mass in bins whose lower edge is at or above ``threshold``."""
    mask = np.asarray(edges[:-1]) >= threshold
    return float(np.sum(np.asarray(fractions)[mask]))


def _count_bin_fractions(model, edges: np.ndarray) -> np.ndarray:
    """Per-bin probability mass of a continuous model over histogram edges."""
    cdf = model.cdf(np.asarray(edges, dtype=float))
    fractions = np.diff(cdf)
    fractions = np.clip(fractions, 0.0, None)
    total = fractions.sum()
    return fractions / total if total > 0 else fractions


def _bytes_bin_fractions(model, edges: np.ndarray, direct_bytes_model: bool = False) -> np.ndarray:
    """Per-bin *byte* mass implied by a file-size model.

    For a count model the byte density is proportional to ``x · pdf(x)``
    (size-biasing); for a model that already describes bytes (the mixture of
    Table 2) the plain probability mass is used.
    """
    fractions = np.zeros(len(edges) - 1)
    for index, (low, high) in enumerate(zip(edges[:-1], edges[1:])):
        low = max(low, 1.0)
        if high <= low:
            continue
        xs = np.logspace(np.log10(low), np.log10(high), 64)
        density = model.pdf(xs)
        weights = density if direct_bytes_model else xs * density
        fractions[index] = float(np.trapezoid(weights, xs))
    total = fractions.sum()
    return fractions / total if total > 0 else fractions


def format_size_model_table(result: dict) -> str:
    rows = [
        [
            label,
            data["files_by_size_mdcc"],
            data["bytes_by_size_mdcc"],
            f"{data.get('bytes_above_512mb', float('nan')):.1%}",
            f"{data.get('target_bytes_above_512mb', float('nan')):.1%}",
            data.get("largest_file", float("nan")),
        ]
        for label, data in result.items()
    ]
    return format_rows(
        [
            "size model",
            "files-by-size MDCC",
            "bytes-by-size MDCC",
            "bytes in >512MB files",
            "desired",
            "largest file",
        ],
        rows,
        title="Ablation: hybrid vs simple lognormal file-size model",
    )


# --- Depth model ----------------------------------------------------------------


def run_depth_model_ablation(num_files: int = 4_000, seed: int = 42) -> dict:
    """Multiplicative vs Poisson-only depth placement."""
    results = {}
    for label, multiplicative in (("multiplicative", True), ("poisson-only", False)):
        config = ImpressionsConfig(
            fs_size_bytes=None,
            num_files=num_files,
            num_directories=max(num_files // 5, 10),
            seed=seed,
            use_multiplicative_depth_model=multiplicative,
        )
        image = Impressions(config).generate()
        distribution = analyze_image(image)
        depth_fracs = distribution.files_by_depth_fractions()
        poisson = config.depth_distribution
        depths = np.arange(len(depth_fracs))
        target = np.asarray(poisson.pmf(depths), dtype=float)
        target = target / target.sum() if target.sum() else target
        mean_bytes_error = _mean_bytes_error(distribution.mean_bytes_by_depth, config)
        results[label] = {
            "files_by_depth_mdcc": mdcc_from_fractions(target, depth_fracs),
            "mean_bytes_by_depth_error_mb": mean_bytes_error,
        }
    return results


def _mean_bytes_error(observed: dict, config: ImpressionsConfig) -> float:
    targets = config.mean_bytes_by_depth
    common = [depth for depth in observed if depth in targets]
    if not common:
        return float("nan")
    diffs = [abs(observed[depth] - targets[depth]) for depth in common]
    return float(np.mean(diffs)) / (1024.0 * 1024.0)


def format_depth_model_table(result: dict) -> str:
    rows = [
        [label, data["files_by_depth_mdcc"], data["mean_bytes_by_depth_error_mb"]]
        for label, data in result.items()
    ]
    return format_rows(
        ["depth model", "files-by-depth MDCC vs Poisson", "mean-bytes-by-depth error (MB)"],
        rows,
        title="Ablation: multiplicative vs Poisson-only file depth model",
    )


# --- Subset-sum improvement phase -------------------------------------------------


def run_subset_sum_ablation(
    pool_size: int = 1_100, subset_size: int = 1_000, trials: int = 10, seed: int = 42
) -> dict:
    """Subset-sum accuracy with and without the local-improvement phase."""
    distribution = LognormalDistribution(mu=8.16, sigma=2.46)
    results = {"with-improvement": [], "without-improvement": []}
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        pool = distribution.sample(rng, pool_size)
        target = float(np.sort(pool)[:subset_size].sum() * 1.05)
        for label, passes in (("with-improvement", 3), ("without-improvement", 0)):
            solution = solve_fixed_size_subset_sum(
                values=pool,
                subset_size=subset_size,
                target_sum=target,
                rng=np.random.default_rng(seed + trial),
                max_improvement_passes=passes,
            )
            results[label].append(solution.relative_error)
    return {
        label: {
            "mean_relative_error": float(np.mean(errors)),
            "max_relative_error": float(np.max(errors)),
        }
        for label, errors in results.items()
    }


def format_subset_sum_table(result: dict) -> str:
    rows = [
        [label, data["mean_relative_error"], data["max_relative_error"]]
        for label, data in result.items()
    ]
    return format_rows(
        ["variant", "mean |sum error|", "max |sum error|"],
        rows,
        title="Ablation: subset-sum local improvement phase",
    )


# --- Content models ------------------------------------------------------------------


def run_content_model_ablation(bytes_per_model: int = 200_000, seed: int = 42) -> dict:
    """Throughput and vocabulary richness of the word models."""
    models = {
        "single-word": SingleWordModel(),
        "word-popularity": WordPopularityModel(),
        "word-length": WordLengthFrequencyModel(),
        "hybrid": HybridWordModel(),
    }
    results = {}
    for label, model in models.items():
        rng = np.random.default_rng(seed)
        start = time.perf_counter()
        text = model.text(rng, bytes_per_model)
        elapsed = time.perf_counter() - start
        words = text.split()
        results[label] = {
            "seconds": elapsed,
            "mb_per_second": (bytes_per_model / (1024.0 * 1024.0)) / max(elapsed, 1e-9),
            "unique_words": len(set(words)),
            "total_words": len(words),
        }
    return results


def format_content_model_table(result: dict) -> str:
    rows = [
        [label, data["mb_per_second"], data["unique_words"], data["total_words"]]
        for label, data in result.items()
    ]
    return format_rows(
        ["content model", "MB/s", "unique words", "total words"],
        rows,
        title="Ablation: content model throughput and richness",
    )
