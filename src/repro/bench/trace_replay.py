"""Trace replay performance and behaviour.

Not a figure from the paper: this driver benchmarks the ``repro.trace``
subsystem the way Table 6 benchmarks image generation.  It generates a scaled
image, synthesizes one trace per family (Zipf read/write/stat mix over the
image, create/delete churn, metadata storm), replays each, and reports

* wall-clock replay throughput (the acceptance bar is >= 100k ops/sec for
  the 50k-op Zipf mix),
* per-op-class simulated latency and cache behaviour,
* cold- vs warm-cache simulated time for the Zipf mix (the dynamic
  counterpart of Figure 1's cached bar).
"""

from __future__ import annotations

from repro.bench.common import format_rows, scaled_default_config
from repro.core.impressions import Impressions
from repro.trace.replay import TraceReplayer
from repro.trace.synthesize import (
    ChurnSpec,
    MetadataStormSpec,
    ZipfMixSpec,
    synthesize_churn,
    synthesize_metadata_storm,
    synthesize_zipf_mix,
)

__all__ = ["run", "format_table"]


def run(scale: float = 0.05, num_ops: int = 50_000, seed: int = 42) -> dict:
    """Replay one trace per family against a freshly generated image."""
    config = scaled_default_config(scale=scale, seed=seed)
    image = Impressions(config).generate()

    zipf_trace = synthesize_zipf_mix(image, ZipfMixSpec(num_ops=num_ops), seed=seed)
    churn_trace = synthesize_churn(ChurnSpec(num_ops=num_ops), seed=seed)
    storm_trace = synthesize_metadata_storm(
        MetadataStormSpec(num_dirs=20, files_per_dir=max(1, num_ops // 100)), seed=seed
    )

    results: dict[str, dict] = {}

    cold = TraceReplayer(image).replay(zipf_trace)
    results["zipf_cold"] = _entry(cold)

    # Replay mutates the image's disk (in-place writes can extend files), so
    # the warm leg runs against a regenerated, identical image: the only
    # difference between the cold and warm rows is cache warmth.
    warm_image = Impressions(config).generate()
    warm_replayer = TraceReplayer(warm_image)
    warm_replayer.warm_cache()
    warm = warm_replayer.replay(zipf_trace)
    results["zipf_warm"] = _entry(warm)

    # Same cold replay with telemetry enabled: the gap between this row and
    # zipf_cold is the observability overhead (budget: <= 3%).
    from repro.obs.core import Telemetry

    obs_image = Impressions(config).generate()
    obs = TraceReplayer(obs_image, telemetry=Telemetry(run_id="bench")).replay(zipf_trace)
    results["zipf_cold_obs"] = _entry(obs)

    churn = TraceReplayer().replay(churn_trace)
    results["churn"] = _entry(churn)

    storm = TraceReplayer().replay(storm_trace)
    results["storm"] = _entry(storm)

    return {
        "scale": scale,
        "num_ops": num_ops,
        "image_files": image.file_count,
        "results": results,
        "warm_speedup_simulated": (
            cold.simulated_ms / warm.simulated_ms if warm.simulated_ms else float("inf")
        ),
        "obs_overhead_ratio": (
            cold.ops_per_second / obs.ops_per_second if obs.ops_per_second else float("inf")
        ),
    }


def _entry(result) -> dict:
    return {
        "operations": result.total_operations,
        "executed": result.executed,
        "skipped": result.skipped,
        "ops_per_second": result.ops_per_second,
        "wall_seconds": result.wall_seconds,
        "simulated_ms": result.simulated_ms,
        "cache_hit_ratio": result.cache_hit_ratio,
        "per_kind": {kind: stats.as_dict() for kind, stats in result.per_kind.items()},
    }


def format_table(result: dict) -> str:
    rows = []
    for name, entry in result["results"].items():
        rows.append(
            [
                name,
                entry["operations"],
                f"{entry['ops_per_second']:,.0f}",
                entry["wall_seconds"],
                entry["simulated_ms"],
                entry["cache_hit_ratio"],
            ]
        )
    table = format_rows(
        ["trace", "ops", "replay ops/s", "wall s", "simulated ms", "hit ratio"],
        rows,
        title=(
            f"Trace replay (scale={result['scale']:g}, "
            f"{result['image_files']} image files, {result['num_ops']} ops/trace)"
        ),
    )
    table += (
        f"\n\nwarm cache simulated speedup on the Zipf mix: "
        f"{result['warm_speedup_simulated']:.1f}x"
    )
    table += (
        f"\ntelemetry overhead on the Zipf mix (cold/obs throughput): "
        f"{result['obs_overhead_ratio']:.3f}x"
    )
    return table
