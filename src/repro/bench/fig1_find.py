"""Figure 1 — impact of directory-tree structure on ``find``.

The paper builds one test file system with Impressions defaults, then runs
``find /`` under five conditions and reports times relative to the first:

* **Original** — the default image, cold cache, perfect layout (score 1.0);
* **Cached** — the same image with file-system contents in the buffer cache;
* **Fragmented** — the same image with layout score 0.95;
* **Flat Tree** — all 100 directories at depth 1;
* **Deep Tree** — directories successively nested to depth 100.

Expected shape: cached is fastest; flat is noticeably faster than the
original; fragmented and deep are noticeably slower, with flat-vs-deep
spanning roughly a 3x range.
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import format_rows
from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.core.impressions import Impressions
from repro.layout.disk import SimulatedDisk
from repro.layout.fragmenter import Fragmenter
from repro.metadata.names import NameGenerator
from repro.namespace.generative_model import build_deep_tree, build_flat_tree
from repro.namespace.placement import FilePlacer
from repro.namespace.tree import FileSystemTree
from repro.workloads.find import FindSimulator

__all__ = ["run", "format_table", "CONDITIONS"]

CONDITIONS = ("Original", "Cached", "Fragmented", "Flat Tree", "Deep Tree")

#: Figure 1 uses a 100-directory namespace (flat = 100 dirs at depth 1, deep =
#: a 100-deep chain).
NUM_DIRECTORIES = 100


def run(num_files: int = 2_000, seed: int = 42, fragmented_layout_score: float = 0.95) -> dict:
    """Run the five Figure 1 conditions and return relative find times."""
    base_config = ImpressionsConfig(
        fs_size_bytes=None,
        num_files=num_files,
        num_directories=NUM_DIRECTORIES,
        seed=seed,
        special_directories=(),
    )

    original = Impressions(base_config).generate()
    fragmented = Impressions(
        base_config.with_overrides(layout_score=fragmented_layout_score)
    ).generate()
    flat = _reshaped_image(original, build_flat_tree(NUM_DIRECTORIES), seed)
    deep = _reshaped_image(original, build_deep_tree(NUM_DIRECTORIES), seed)

    times = {
        "Original": _find_time(original, warm=False),
        "Cached": _find_time(original, warm=True),
        "Fragmented": _find_time(fragmented, warm=False),
        "Flat Tree": _find_time(flat, warm=False),
        "Deep Tree": _find_time(deep, warm=False),
    }
    baseline = times["Original"]
    relative = {name: value / baseline for name, value in times.items()}
    return {
        "times_ms": times,
        "relative_overhead": relative,
        "layout_scores": {
            "Original": original.achieved_layout_score(),
            "Fragmented": fragmented.achieved_layout_score(),
        },
        "num_files": num_files,
        "num_directories": NUM_DIRECTORIES,
    }


def format_table(result: dict) -> str:
    rows = [
        [condition, result["relative_overhead"][condition], result["times_ms"][condition]]
        for condition in CONDITIONS
    ]
    return format_rows(
        ["condition", "relative overhead", "find time (ms, simulated)"],
        rows,
        title='Figure 1: time taken for "find" operation (relative to Original)',
    )


def _find_time(image: FileSystemImage, warm: bool) -> float:
    simulator = FindSimulator(image)
    if warm:
        simulator.warm_cache()
    return simulator.run().elapsed_ms


def _reshaped_image(reference: FileSystemImage, tree: FileSystemTree, seed: int) -> FileSystemImage:
    """Re-home the reference image's files into a differently shaped tree.

    The flat/deep comparison keeps the same file population (sizes and
    extensions) and only changes the namespace shape, exactly as the paper
    describes ("a file system created by flattening the original directory
    tree, and one by deepening it").
    """
    rng = np.random.default_rng(seed)
    config = ImpressionsConfig(fs_size_bytes=None, num_files=max(reference.file_count, 1), seed=seed)
    placer = FilePlacer(tree=tree, model=config.placement_model(), rng=rng)
    names = NameGenerator()
    for file_node in reference.tree.files:
        parent = placer.place(file_node.size)
        tree.create_file(
            parent=parent,
            size=file_node.size,
            extension=file_node.extension,
            name=names.next_file_name(file_node.extension),
            content_kind=file_node.content_kind,
        )

    total_blocks = sum(file.size for file in tree.files) // 4096 + tree.file_count + 4096
    disk = SimulatedDisk(num_blocks=int(total_blocks * 1.4))
    fragmenter = Fragmenter(disk=disk, target_score=1.0, rng=rng)
    for file_node in tree.files:
        extents = fragmenter.allocate_regular_file(file_node.path(), file_node.size)
        file_node.extents = extents
        file_node.first_block = extents[0][0] if extents else None
    fragmenter.finish()
    return FileSystemImage(tree=tree, disk=disk)
