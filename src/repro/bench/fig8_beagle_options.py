"""Figure 8 — reproducible images: impact of content on Beagle's options.

Four file-system images (Default content mix, all-Text, all-Image, all-Binary)
are indexed under four Beagle configurations (Original, TextCache, DisDir,
DisFilter); the paper plots indexing time and index size relative to the
Original run on the Default image.  Expected shape: TextCache costs extra time
and roughly doubles-to-triples the index for text-heavy images; DisDir is a
small saving; DisFilter collapses both time and size because only attributes
are indexed.
"""

from __future__ import annotations

from repro.bench.common import format_rows, scaled_default_config
from repro.content.generators import ContentPolicy
from repro.core.impressions import Impressions
from repro.workloads.search.beagle import BeagleIndexOptions, BeagleSearchEngine

__all__ = ["run", "format_table", "CONTENT_IMAGES", "INDEX_OPTIONS"]

#: Figure 8's image variants: label → forced content kind (None = default mix).
CONTENT_IMAGES = {
    "Default": None,
    "Text": "text",
    "Image": "image",
    "Binary": "binary",
}

#: Figure 8's Beagle index options.
INDEX_OPTIONS = {
    "Original": BeagleIndexOptions.original(),
    "TextCache": BeagleIndexOptions.textcache(),
    "DisDir": BeagleIndexOptions.disdir(),
    "DisFilter": BeagleIndexOptions.disfilter(),
}


def run(scale: float = 0.1, seed: int = 42) -> dict:
    """Index every (content image, index option) pair and normalise to Original/Default."""
    images = {}
    for label, forced_kind in CONTENT_IMAGES.items():
        config = scaled_default_config(
            scale=scale,
            seed=seed,
            generate_content=True,
            content=ContentPolicy(text_model="hybrid", force_kind=forced_kind),
        )
        images[label] = Impressions(config).generate()

    raw: dict[str, dict[str, dict]] = {}
    for option_label, options in INDEX_OPTIONS.items():
        engine = BeagleSearchEngine(options)
        raw[option_label] = {}
        for image_label, image in images.items():
            outcome = engine.index(image)
            raw[option_label][image_label] = {
                "indexing_time_ms": outcome.indexing_time_ms,
                "index_size_bytes": outcome.index_size_bytes,
                "content_coverage": outcome.content_coverage,
            }

    baseline = raw["Original"]["Default"]
    relative_time = {
        option: {
            image: raw[option][image]["indexing_time_ms"] / baseline["indexing_time_ms"]
            for image in CONTENT_IMAGES
        }
        for option in INDEX_OPTIONS
    }
    relative_size = {
        option: {
            image: raw[option][image]["index_size_bytes"] / baseline["index_size_bytes"]
            for image in CONTENT_IMAGES
        }
        for option in INDEX_OPTIONS
    }
    return {"raw": raw, "relative_time": relative_time, "relative_size": relative_size, "scale": scale}


def format_table(result: dict) -> str:
    time_rows = [
        [option, *[result["relative_time"][option][image] for image in CONTENT_IMAGES]]
        for option in INDEX_OPTIONS
    ]
    size_rows = [
        [option, *[result["relative_size"][option][image] for image in CONTENT_IMAGES]]
        for option in INDEX_OPTIONS
    ]
    headers = ["index option", *CONTENT_IMAGES.keys()]
    time_table = format_rows(headers, time_rows, title="Figure 8 (left): Beagle relative time to index")
    size_table = format_rows(headers, size_rows, title="Figure 8 (right): Beagle relative index size")
    return time_table + "\n\n" + size_table
