"""Table 3 — statistical accuracy of generated images (MDCC over 20 trials).

For every parameter of Figure 2, the paper reports the MDCC (Maximum
Displacement of the Cumulative Curves) between the generated and desired
distributions, averaged over 20 trials.  Expected magnitudes: a few percent
for every parameter (0.004–0.06), plus ~0.1 MB average difference for bytes
with depth (reported in MB rather than as an MDCC).
"""

from __future__ import annotations

import numpy as np

from repro.bench.common import format_rows
from repro.bench.fig2_accuracy import build_desired_and_generated
from repro.dataset.study import compare_distribution_sets

__all__ = ["run", "format_table", "PAPER_REFERENCE"]

#: The paper's Table 3 values, for side-by-side comparison in EXPERIMENTS.md.
PAPER_REFERENCE = {
    "directory_count_with_depth": 0.03,
    "directory_size_subdirectories": 0.004,
    "file_size_by_count": 0.04,
    "file_size_by_bytes": 0.02,
    "extension_popularity": 0.03,
    "file_count_with_depth": 0.05,
    "bytes_with_depth_mb": 0.12,
    "file_count_with_depth_special_dirs": 0.06,
}


def run(trials: int = 20, scale: float = 0.05, seed: int = 42) -> dict:
    """Average the Figure 2 MDCC values over ``trials`` independent images."""
    if trials < 1:
        raise ValueError("trials must be at least 1")
    per_trial: list[dict[str, float]] = []
    for trial in range(trials):
        desired, generated = build_desired_and_generated(scale=scale, seed=seed + trial)
        per_trial.append(compare_distribution_sets(desired, generated))
    averaged = {
        key: float(np.mean([trial_result[key] for trial_result in per_trial]))
        for key in per_trial[0]
    }
    spread = {
        key: float(np.std([trial_result[key] for trial_result in per_trial]))
        for key in per_trial[0]
    }
    return {"trials": trials, "average_mdcc": averaged, "std_mdcc": spread, "per_trial": per_trial}


def format_table(result: dict) -> str:
    rows = []
    for parameter, value in result["average_mdcc"].items():
        paper_value = PAPER_REFERENCE.get(parameter, "-")
        rows.append([parameter, value, result["std_mdcc"][parameter], paper_value])
    return format_rows(
        ["parameter", "avg MDCC", "std", "paper"],
        rows,
        title=f"Table 3: statistical accuracy over {result['trials']} trials",
    )
