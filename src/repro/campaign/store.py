"""Append-only JSONL result store.

One line per completed scenario.  Rows are canonical JSON (sorted keys, fixed
separators) so that two runs of the same campaign produce byte-identical
stores *except* for the ``wall`` section (every wall-clock measurement) and
the optional ``cache`` section (stage-cache hit counters, which depend on
prior runs); :func:`deterministic_view` strips both for comparisons.

The store is append-only on purpose: results are facts about a (spec, seed,
code) triple, never edited in place.  Re-running a campaign consults
:meth:`ResultStore.fingerprints` and skips scenarios whose fingerprint is
already present; ``--force`` appends fresh rows, and readers that want one
row per scenario take the latest (:meth:`ResultStore.latest_rows`).

Crash consistency: a process dying mid-append leaves a torn final line.
Readers *tolerate* it — the partial line is quarantined into the store's
``.quarantine/`` sidecar and skipped, never surfaced as a row — and the next
:meth:`ResultStore.append` heals the file by truncating the torn tail before
writing, so one crash can never corrupt the row that follows it.  Damage
anywhere *other* than the final line is not a crash signature (appends are
sequential), so it still raises :class:`StoreError`; :meth:`ResultStore.recover`
is the explicit repair that quarantines every bad line and rewrites the
valid rows atomically.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Iterator, Mapping

from repro.faults import atomic as fault_atomic
from repro.faults import plan as fault_plan

__all__ = ["ResultStore", "StoreError", "deterministic_view", "WALL_KEY", "CACHE_KEY"]

#: Result-row section holding wall-clock (nondeterministic) measurements.
WALL_KEY = "wall"

#: Result-row section holding stage-cache counters.  Cache hits depend on
#: what earlier runs left in the cache directory, not on the scenario, so the
#: section is excluded from the deterministic view alongside ``wall``.
CACHE_KEY = "cache"


class StoreError(ValueError):
    """Raised when a result store file cannot be parsed."""


def deterministic_view(row: Mapping[str, object]) -> dict:
    """The row without its wall-clock and cache sections (the comparable part)."""
    return {key: value for key, value in row.items() if key not in (WALL_KEY, CACHE_KEY)}


class ResultStore:
    """An append-only JSONL file of campaign result rows."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def heal_torn_tail(self) -> bool:
        """Truncate a torn final line (crash mid-append), quarantining it.

        A well-formed store ends with a newline; anything after the last
        newline is the partial row a dying process managed to flush.  The
        torn bytes are preserved in the ``.quarantine/`` sidecar before the
        file is truncated back to its valid prefix.  Returns True when a
        tail was healed.
        """
        if not self.exists():
            return False
        # detlint: ignore[raw-write] in-place truncation IS the heal; the torn bytes are already quarantined
        with open(self.path, "r+b") as handle:
            data = handle.read()
            if not data or data.endswith(b"\n"):
                return False
            cut = data.rfind(b"\n") + 1  # 0 when the whole file is one torn line
            torn = data[cut:]
            fault_plan.count_corruption("store")
            fault_atomic.quarantine_bytes(
                self.path,
                torn,
                layer="store",
                reason="torn_final_line",
                detail={"store": self.path, "valid_prefix_bytes": cut},
            )
            handle.truncate(cut)
        fault_plan.count_heal("store", "truncate_torn_tail")
        return True

    def append(self, row: Mapping[str, object]) -> None:
        """Append one result row as a canonical JSON line.

        Heals a torn tail first: appending after an unhealed crash would
        concatenate the new row onto the partial line and corrupt *both*.
        """
        line = json.dumps(row, sort_keys=True, separators=(",", ":"))
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.heal_torn_tail()
        data = (line + "\n").encode("utf-8")
        data, crash_after = fault_plan.mangle_write("store.append", data)
        # detlint: ignore[raw-write] append-only JSONL: torn tails are healed on the read side, by design
        with open(self.path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if crash_after:
            raise fault_plan.InjectedCrash("store.append", "torn append persisted")

    def __iter__(self) -> Iterator[dict]:
        if not self.exists():
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        last_index = len(lines) - 1
        for number, raw_line in enumerate(lines, start=1):
            line = raw_line.strip()
            if not line:
                continue
            # The final element of the split is newline-terminated-free by
            # construction: bytes after the last "\n" are a torn append.
            is_torn_tail = number - 1 == last_index
            try:
                row = json.loads(line.decode("utf-8"))
                if not isinstance(row, dict):
                    raise ValueError("result row must be an object")
            except (ValueError, UnicodeDecodeError) as error:
                if is_torn_tail:
                    fault_plan.count_corruption("store")
                    fault_atomic.quarantine_bytes(
                        self.path,
                        raw_line,
                        layer="store",
                        reason="torn_final_line",
                        detail={"store": self.path, "line": number},
                    )
                    continue
                raise StoreError(
                    f"{self.path}:{number}: malformed result row: {error}; "
                    "run ResultStore.recover() to quarantine bad lines"
                ) from error
            yield row

    def rows(self) -> list[dict]:
        return list(self)

    def fingerprints(self) -> set[str]:
        """Fingerprints of every scenario with a stored result."""
        return {
            str(row["fingerprint"]) for row in self if "fingerprint" in row
        }

    def latest_rows(self) -> dict[str, dict]:
        """Latest row per scenario id (later appends win, e.g. after --force)."""
        latest: dict[str, dict] = {}
        for row in self:
            scenario = str(row.get("scenario", row.get("fingerprint", "")))
            latest[scenario] = row
        return latest

    def compact(self, *, dry_run: bool = False) -> dict:
        """Rewrite the store keeping only the newest row per fingerprint.

        A long-lived store accretes superseded rows: ``--force`` re-runs,
        benign duplicates from farm-worker crash recovery, repeated
        submissions of overlapping sweeps.  Readers already resolve these by
        taking the latest row, so compaction loses nothing — it just
        reclaims the bytes.  Rows without a fingerprint are keyed by their
        scenario id; newest wins either way, and surviving rows keep their
        relative order.  The rewrite is atomic (temp file + ``os.replace``),
        so concurrent readers see either the old store or the new one —
        never a partial file.  Returns a report dict; with ``dry_run`` the
        file is left untouched and the report says what *would* happen.
        """
        if not self.exists():
            return {
                "dry_run": dry_run,
                "path": self.path,
                "rows_before": 0,
                "rows_after": 0,
                "rows_dropped": 0,
                "bytes_before": 0,
                "bytes_after": 0,
                "bytes_reclaimed": 0,
            }
        latest_index: dict[str, int] = {}
        rows: list[dict] = []
        for index, row in enumerate(self):
            rows.append(row)
            key = str(row.get("fingerprint", row.get("scenario", f"row-{index}")))
            latest_index[key] = index
        keep = sorted(latest_index.values())
        lines = [
            json.dumps(rows[index], sort_keys=True, separators=(",", ":")) + "\n"
            for index in keep
        ]
        bytes_before = os.path.getsize(self.path)
        bytes_after = sum(len(line.encode("utf-8")) for line in lines)
        report = {
            "dry_run": dry_run,
            "path": self.path,
            "rows_before": len(rows),
            "rows_after": len(keep),
            "rows_dropped": len(rows) - len(keep),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "bytes_reclaimed": bytes_before - bytes_after,
        }
        if dry_run:
            return report
        directory = os.path.dirname(self.path) or "."
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path), suffix=".compact"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.writelines(lines)
            os.replace(temp_path, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(temp_path)
            raise
        return report

    def recover(self) -> dict:
        """Repair a damaged store: quarantine every bad line, keep the rest.

        Unlike iteration — which tolerates only the torn-final-line crash
        signature — recovery accepts arbitrary damage (bit rot, a partial
        overwrite, an editor accident): each unparsable line is moved to the
        ``.quarantine/`` sidecar with its line number, and the surviving
        rows are rewritten atomically in their original order.  Returns a
        report of rows kept and lines quarantined.
        """
        if not self.exists():
            return {"path": self.path, "rows_kept": 0, "lines_quarantined": 0}
        with open(self.path, "rb") as handle:
            raw = handle.read()
        kept: list[bytes] = []
        quarantined = 0
        for number, raw_line in enumerate(raw.split(b"\n"), start=1):
            line = raw_line.strip()
            if not line:
                continue
            try:
                row = json.loads(line.decode("utf-8"))
                if not isinstance(row, dict):
                    raise ValueError("result row must be an object")
            except (ValueError, UnicodeDecodeError) as error:
                quarantined += 1
                fault_plan.count_corruption("store")
                fault_atomic.quarantine_bytes(
                    self.path,
                    raw_line,
                    layer="store",
                    reason="recover_bad_line",
                    detail={"store": self.path, "line": number, "error": str(error)},
                )
                continue
            kept.append(line + b"\n")
        if quarantined:
            directory = os.path.dirname(self.path) or "."
            descriptor, temp_path = tempfile.mkstemp(
                dir=directory, prefix=os.path.basename(self.path), suffix=".recover"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    handle.writelines(kept)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, self.path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.remove(temp_path)
                raise
            fault_plan.count_heal("store", "recover_rewrite")
        return {
            "path": self.path,
            "rows_kept": len(kept),
            "lines_quarantined": quarantined,
        }
