"""Append-only JSONL result store.

One line per completed scenario.  Rows are canonical JSON (sorted keys, fixed
separators) so that two runs of the same campaign produce byte-identical
stores *except* for the ``wall`` section (every wall-clock measurement) and
the optional ``cache`` section (stage-cache hit counters, which depend on
prior runs); :func:`deterministic_view` strips both for comparisons.

The store is append-only on purpose: results are facts about a (spec, seed,
code) triple, never edited in place.  Re-running a campaign consults
:meth:`ResultStore.fingerprints` and skips scenarios whose fingerprint is
already present; ``--force`` appends fresh rows, and readers that want one
row per scenario take the latest (:meth:`ResultStore.latest_rows`).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import Iterator, Mapping

__all__ = ["ResultStore", "StoreError", "deterministic_view", "WALL_KEY", "CACHE_KEY"]

#: Result-row section holding wall-clock (nondeterministic) measurements.
WALL_KEY = "wall"

#: Result-row section holding stage-cache counters.  Cache hits depend on
#: what earlier runs left in the cache directory, not on the scenario, so the
#: section is excluded from the deterministic view alongside ``wall``.
CACHE_KEY = "cache"


class StoreError(ValueError):
    """Raised when a result store file cannot be parsed."""


def deterministic_view(row: Mapping[str, object]) -> dict:
    """The row without its wall-clock and cache sections (the comparable part)."""
    return {key: value for key, value in row.items() if key not in (WALL_KEY, CACHE_KEY)}


class ResultStore:
    """An append-only JSONL file of campaign result rows."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, row: Mapping[str, object]) -> None:
        """Append one result row as a canonical JSON line."""
        line = json.dumps(row, sort_keys=True, separators=(",", ":"))
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.write("\n")

    def __iter__(self) -> Iterator[dict]:
        if not self.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise StoreError(
                        f"{self.path}:{number}: malformed result row: {error}"
                    ) from error
                if not isinstance(row, dict):
                    raise StoreError(f"{self.path}:{number}: result row must be an object")
                yield row

    def rows(self) -> list[dict]:
        return list(self)

    def fingerprints(self) -> set[str]:
        """Fingerprints of every scenario with a stored result."""
        return {
            str(row["fingerprint"]) for row in self if "fingerprint" in row
        }

    def latest_rows(self) -> dict[str, dict]:
        """Latest row per scenario id (later appends win, e.g. after --force)."""
        latest: dict[str, dict] = {}
        for row in self:
            scenario = str(row.get("scenario", row.get("fingerprint", "")))
            latest[scenario] = row
        return latest

    def compact(self, *, dry_run: bool = False) -> dict:
        """Rewrite the store keeping only the newest row per fingerprint.

        A long-lived store accretes superseded rows: ``--force`` re-runs,
        benign duplicates from farm-worker crash recovery, repeated
        submissions of overlapping sweeps.  Readers already resolve these by
        taking the latest row, so compaction loses nothing — it just
        reclaims the bytes.  Rows without a fingerprint are keyed by their
        scenario id; newest wins either way, and surviving rows keep their
        relative order.  The rewrite is atomic (temp file + ``os.replace``),
        so concurrent readers see either the old store or the new one —
        never a partial file.  Returns a report dict; with ``dry_run`` the
        file is left untouched and the report says what *would* happen.
        """
        if not self.exists():
            return {
                "dry_run": dry_run,
                "path": self.path,
                "rows_before": 0,
                "rows_after": 0,
                "rows_dropped": 0,
                "bytes_before": 0,
                "bytes_after": 0,
                "bytes_reclaimed": 0,
            }
        latest_index: dict[str, int] = {}
        rows: list[dict] = []
        for index, row in enumerate(self):
            rows.append(row)
            key = str(row.get("fingerprint", row.get("scenario", f"row-{index}")))
            latest_index[key] = index
        keep = sorted(latest_index.values())
        lines = [
            json.dumps(rows[index], sort_keys=True, separators=(",", ":")) + "\n"
            for index in keep
        ]
        bytes_before = os.path.getsize(self.path)
        bytes_after = sum(len(line.encode("utf-8")) for line in lines)
        report = {
            "dry_run": dry_run,
            "path": self.path,
            "rows_before": len(rows),
            "rows_after": len(keep),
            "rows_dropped": len(rows) - len(keep),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "bytes_reclaimed": bytes_before - bytes_after,
        }
        if dry_run:
            return report
        directory = os.path.dirname(self.path) or "."
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path), suffix=".compact"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.writelines(lines)
            os.replace(temp_path, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.remove(temp_path)
            raise
        return report
