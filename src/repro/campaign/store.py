"""Append-only JSONL result store.

One line per completed scenario.  Rows are canonical JSON (sorted keys, fixed
separators) so that two runs of the same campaign produce byte-identical
stores *except* for the ``wall`` section (every wall-clock measurement) and
the optional ``cache`` section (stage-cache hit counters, which depend on
prior runs); :func:`deterministic_view` strips both for comparisons.

The store is append-only on purpose: results are facts about a (spec, seed,
code) triple, never edited in place.  Re-running a campaign consults
:meth:`ResultStore.fingerprints` and skips scenarios whose fingerprint is
already present; ``--force`` appends fresh rows, and readers that want one
row per scenario take the latest (:meth:`ResultStore.latest_rows`).
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Mapping

__all__ = ["ResultStore", "StoreError", "deterministic_view", "WALL_KEY", "CACHE_KEY"]

#: Result-row section holding wall-clock (nondeterministic) measurements.
WALL_KEY = "wall"

#: Result-row section holding stage-cache counters.  Cache hits depend on
#: what earlier runs left in the cache directory, not on the scenario, so the
#: section is excluded from the deterministic view alongside ``wall``.
CACHE_KEY = "cache"


class StoreError(ValueError):
    """Raised when a result store file cannot be parsed."""


def deterministic_view(row: Mapping[str, object]) -> dict:
    """The row without its wall-clock and cache sections (the comparable part)."""
    return {key: value for key, value in row.items() if key not in (WALL_KEY, CACHE_KEY)}


class ResultStore:
    """An append-only JSONL file of campaign result rows."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, row: Mapping[str, object]) -> None:
        """Append one result row as a canonical JSON line."""
        line = json.dumps(row, sort_keys=True, separators=(",", ":"))
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.write("\n")

    def __iter__(self) -> Iterator[dict]:
        if not self.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise StoreError(
                        f"{self.path}:{number}: malformed result row: {error}"
                    ) from error
                if not isinstance(row, dict):
                    raise StoreError(f"{self.path}:{number}: result row must be an object")
                yield row

    def rows(self) -> list[dict]:
        return list(self)

    def fingerprints(self) -> set[str]:
        """Fingerprints of every scenario with a stored result."""
        return {
            str(row["fingerprint"]) for row in self if "fingerprint" in row
        }

    def latest_rows(self) -> dict[str, dict]:
        """Latest row per scenario id (later appends win, e.g. after --force)."""
        latest: dict[str, dict] = {}
        for row in self:
            scenario = str(row.get("scenario", row.get("fingerprint", "")))
            latest[scenario] = row
        return latest
