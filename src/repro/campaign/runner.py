"""Campaign execution: scenario workers and the parallel runner.

Each scenario is an independent unit of work — generate the image described
by its knobs, run its steps, collect metrics — so the runner fans scenarios
out across a :class:`concurrent.futures.ProcessPoolExecutor` (image
generation is CPU-bound; processes sidestep the GIL).  :func:`run_scenario`
is a module-level function of a plain dict payload so it pickles cleanly.

Determinism contract: everything in a result row except the ``wall`` and
``cache`` sections is a pure function of the scenario (fingerprint, knobs,
steps, simulated metrics) — the stage cache restores bit-identical state, so
a cache-hit scenario reports the same metrics as a regenerated one.  Rows
are appended to the store in *scenario order*, not completion order, so two
runs of one spec yield byte-identical stores modulo ``wall``/``cache``
regardless of worker scheduling.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.registry import get_step
from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import CACHE_KEY, ResultStore
from repro.core.config import ImpressionsConfig
from repro.pipeline.cache import StageCache
from repro.pipeline.runner import default_pipeline

__all__ = ["run_scenario", "run_campaign", "CampaignRunResult", "RESULT_FORMAT_VERSION"]

#: Version stamp written into every result row.
RESULT_FORMAT_VERSION = 1


def run_scenario(payload: dict) -> dict:
    """Execute one scenario payload (see :meth:`Scenario.payload`).

    Returns the complete result row: scenario identity, resolved knobs,
    per-step metrics namespaced as ``<label>.<metric>``, a ``wall`` section
    with wall-clock seconds for generation and each step, and — when the
    payload names a ``cache_dir`` — a ``cache`` section with the stage-cache
    counters of the generation pipeline (scenarios sharing generation knobs
    restore the image from the cache instead of regenerating it).
    """
    config = ImpressionsConfig.from_knobs(payload["knobs"])
    cache_dir = payload.get("cache_dir")
    cache = StageCache(cache_dir) if cache_dir else None
    wall: dict[str, float] = {}
    start = time.perf_counter()
    pipeline_result = default_pipeline().run(config, cache=cache)
    image = pipeline_result.image
    wall["generate_seconds"] = time.perf_counter() - start

    metrics: dict[str, object] = {}
    for step_spec in payload["steps"]:
        params = dict(step_spec)
        name = params.pop("step")
        label = params.pop("label", name)
        function = get_step(name)
        start = time.perf_counter()
        step_metrics = function(image, config, params)
        wall[f"{label}_seconds"] = time.perf_counter() - start
        for key, value in step_metrics.items():
            metrics[f"{label}.{key}"] = value

    row = {
        "format": RESULT_FORMAT_VERSION,
        "campaign": payload["campaign"],
        "scenario": payload["scenario"],
        "fingerprint": payload["fingerprint"],
        "params": dict(payload["params"]),
        "knobs": dict(payload["knobs"]),
        "steps": [dict(step) for step in payload["steps"]],
        "metrics": metrics,
        "wall": wall,
    }
    if cache is not None:
        row[CACHE_KEY] = pipeline_result.cache_summary()
    return row


@dataclass
class CampaignRunResult:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    store_path: str
    total_scenarios: int
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "store": self.store_path,
            "scenarios": self.total_scenarios,
            "executed": len(self.executed),
            "skipped_existing": len(self.skipped),
            "wall_seconds": self.wall_seconds,
        }


def run_campaign(
    spec: CampaignSpec,
    store_path: str,
    *,
    workers: int = 1,
    force: bool = False,
    cache_dir: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignRunResult:
    """Expand ``spec`` and execute every scenario not already in the store.

    Args:
        spec: the campaign to run.
        store_path: JSONL result store to append to (created if missing).
        workers: worker processes; ``1`` runs scenarios in-process (no pool),
            which is also the fallback when only one scenario is pending.
        force: re-run scenarios whose fingerprints are already stored
            (appending fresh rows) instead of skipping them.
        cache_dir: optional stage-cache directory shared by every scenario
            (and safe to share across campaigns): scenarios with the same
            generation knobs generate the image once and restore it from the
            cache afterwards.  Workers race benignly — cache writes are
            atomic and content-addressed.
        progress: optional callback receiving one human-readable line per
            scenario scheduled or skipped.

    Returns:
        A :class:`CampaignRunResult`; rows land in the store as a side effect.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    start = time.perf_counter()
    store = ResultStore(store_path)
    scenarios = spec.expand()
    completed = store.fingerprints() if not force else set()

    pending: list[Scenario] = []
    result = CampaignRunResult(
        campaign=spec.name, store_path=store_path, total_scenarios=len(scenarios)
    )
    for scenario in scenarios:
        if scenario.fingerprint in completed:
            result.skipped.append(scenario.scenario_id)
            if progress:
                progress(f"skip {scenario.scenario_id} (already in store)")
        else:
            pending.append(scenario)
            if progress:
                progress(f"run  {scenario.scenario_id}")

    # Rows are appended as they complete (in scenario order — executor.map
    # yields in submission order no matter which worker finishes first), so a
    # failure partway through keeps every finished scenario in the store and
    # the next run resumes from the crash point via fingerprints.
    payloads = [scenario.payload() for scenario in pending]
    if cache_dir:
        for payload in payloads:
            payload["cache_dir"] = cache_dir
    if len(payloads) <= 1 or workers == 1:
        for scenario, payload in zip(pending, payloads):
            store.append(run_scenario(payload))
            result.executed.append(scenario.scenario_id)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
            for scenario, row in zip(pending, pool.map(run_scenario, payloads)):
                store.append(row)
                result.executed.append(scenario.scenario_id)

    result.wall_seconds = time.perf_counter() - start
    return result
