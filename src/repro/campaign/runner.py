"""Campaign execution: scenario workers and the parallel runner.

Each scenario is an independent unit of work — generate the image described
by its knobs, run its steps, collect metrics — so the runner fans scenarios
out across a :class:`concurrent.futures.ProcessPoolExecutor` (image
generation is CPU-bound; processes sidestep the GIL).  :func:`run_scenario`
is a module-level function of a plain dict payload so it pickles cleanly.

Determinism contract: everything in a result row except the ``wall`` and
``cache`` sections is a pure function of the scenario (fingerprint, knobs,
steps, simulated metrics) — the stage cache restores bit-identical state, so
a cache-hit scenario reports the same metrics as a regenerated one.  Rows
are appended to the store in *scenario order*, not completion order, so two
runs of one spec yield byte-identical stores modulo ``wall``/``cache``
regardless of worker scheduling.
"""

from __future__ import annotations

import contextlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.registry import get_step
from repro.campaign.spec import CampaignSpec, Scenario
from repro.campaign.store import CACHE_KEY, ResultStore
from repro.core.config import ImpressionsConfig
from repro.obs import core as obs_core
from repro.pipeline.cache import StageCache
from repro.pipeline.runner import default_pipeline

__all__ = [
    "run_scenario",
    "run_campaign",
    "CampaignRunResult",
    "HeartbeatEvent",
    "RESULT_FORMAT_VERSION",
    "TELEMETRY_KEY",
]

#: Version stamp written into every result row.
RESULT_FORMAT_VERSION = 1

#: Transport key for the worker's telemetry snapshot; the runner pops it off
#: the row before the store append, so stored rows keep the determinism
#: contract (byte-identical modulo ``wall``/``cache``).
TELEMETRY_KEY = "_telemetry"


def run_scenario(payload: dict) -> dict:
    """Execute one scenario payload (see :meth:`Scenario.payload`).

    Returns the complete result row: scenario identity, resolved knobs,
    per-step metrics namespaced as ``<label>.<metric>``, a ``wall`` section
    with wall-clock seconds for generation and each step, and — when the
    payload names a ``cache_dir`` — a ``cache`` section with the stage-cache
    counters of the generation pipeline (scenarios sharing generation knobs
    restore the image from the cache instead of regenerating it).

    With ``payload["telemetry"]`` truthy the scenario runs under a fresh
    :class:`repro.obs.Telemetry` (so the pipeline, replayers and sinks it
    drives are observed) and its picklable snapshot rides back to the parent
    under :data:`TELEMETRY_KEY`.
    """
    tele = (
        obs_core.Telemetry(run_id=str(payload["scenario"]))
        if payload.get("telemetry")
        else None
    )
    scope = obs_core.use(tele) if tele is not None else contextlib.nullcontext()
    with scope:
        scenario_span = (
            tele.span(
                "scenario",
                scenario=str(payload["scenario"]),
                campaign=str(payload["campaign"]),
            )
            if tele is not None
            else contextlib.nullcontext()
        )
        with scenario_span:
            config = ImpressionsConfig.from_knobs(payload["knobs"])
            cache_dir = payload.get("cache_dir")
            cache = StageCache(cache_dir) if cache_dir else None
            wall: dict[str, float] = {}
            start = time.perf_counter()
            pipeline_result = default_pipeline().run(config, cache=cache)
            image = pipeline_result.image
            wall["generate_seconds"] = time.perf_counter() - start

            metrics: dict[str, object] = {}
            for step_spec in payload["steps"]:
                params = dict(step_spec)
                name = params.pop("step")
                label = params.pop("label", name)
                function = get_step(name)
                step_span = (
                    tele.span("step", step=name, label=label)
                    if tele is not None
                    else contextlib.nullcontext()
                )
                start = time.perf_counter()
                with step_span:
                    step_metrics = function(image, config, params)
                wall[f"{label}_seconds"] = time.perf_counter() - start
                for key, value in step_metrics.items():
                    metrics[f"{label}.{key}"] = value

    row = {
        "format": RESULT_FORMAT_VERSION,
        "campaign": payload["campaign"],
        "scenario": payload["scenario"],
        "fingerprint": payload["fingerprint"],
        "params": dict(payload["params"]),
        "knobs": dict(payload["knobs"]),
        "steps": [dict(step) for step in payload["steps"]],
        "metrics": metrics,
        "wall": wall,
    }
    if cache is not None:
        row[CACHE_KEY] = pipeline_result.cache_summary()
    if tele is not None:
        row[TELEMETRY_KEY] = tele.snapshot()
    return row


@dataclass(frozen=True)
class HeartbeatEvent:
    """One live-progress beat of a campaign run.

    Emitted by :func:`run_campaign` through its ``heartbeat`` callback —
    on a steady interval while scenarios execute and once per completion —
    so the CLI can show scenarios done/total, what is in flight (ids and
    short fingerprints), a rolling completion rate and an ETA.
    """

    campaign: str
    done: int
    total: int
    skipped: int
    #: ``(scenario_id, short_fingerprint)`` pairs believed in flight.
    running: tuple[tuple[str, str], ...]
    elapsed_seconds: float
    #: completions per second over the recent window (0.0 before the first).
    rate_per_second: float
    #: estimated seconds to finish the pending set; None until a rate exists.
    eta_seconds: float | None

    def render(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        parts = [f"[{self.campaign}] {self.done}/{self.total} scenarios ({pct:.0f}%)"]
        if self.skipped:
            parts.append(f"{self.skipped} skipped")
        if self.rate_per_second > 0:
            parts.append(f"{self.rate_per_second * 60.0:.1f}/min")
        if self.eta_seconds is not None:
            minutes, seconds = divmod(int(round(self.eta_seconds)), 60)
            parts.append(f"eta {minutes:d}:{seconds:02d}")
        line = ", ".join(parts)
        if self.running:
            shown = ", ".join(f"{sid}@{fp}" for sid, fp in self.running[:3])
            if len(self.running) > 3:
                shown += f", +{len(self.running) - 3} more"
            line += f" | running: {shown}"
        return line


class _Heartbeat:
    """Throttled heartbeat emitter with a rolling completion-rate window."""

    def __init__(
        self,
        emit: Callable[[HeartbeatEvent], None],
        interval: float,
        campaign: str,
        total: int,
        skipped: int,
    ) -> None:
        self.emit = emit
        self.interval = max(float(interval), 0.05)
        self.campaign = campaign
        self.total = total
        self.skipped = skipped
        self._start = time.perf_counter()
        self._last_emit = float("-inf")
        self._marks: list[float] = []

    def completed(self) -> None:
        self._marks.append(time.perf_counter())

    def beat(
        self,
        done: int,
        running: list[tuple[str, str]],
        *,
        force: bool = False,
    ) -> None:
        now = time.perf_counter()
        if not force and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        # Rolling rate over the last few completions, measured from just
        # before the window starts (run start for the first few) — robust to
        # in-order appends clustering several completions into one instant.
        window = self._marks[-6:]
        if window:
            t0 = self._marks[-7] if len(self._marks) > 6 else self._start
            span = window[-1] - t0
            rate = len(window) / span if span > 0 else 0.0
        else:
            rate = 0.0
        remaining = max(0, self.total - done)
        eta = remaining / rate if rate > 0 else None
        self.emit(
            HeartbeatEvent(
                campaign=self.campaign,
                done=done,
                total=self.total,
                skipped=self.skipped,
                running=tuple(running),
                elapsed_seconds=now - self._start,
                rate_per_second=rate,
                eta_seconds=eta,
            )
        )


@dataclass
class CampaignRunResult:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    store_path: str
    total_scenarios: int
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "store": self.store_path,
            "scenarios": self.total_scenarios,
            "executed": len(self.executed),
            "skipped_existing": len(self.skipped),
            "wall_seconds": self.wall_seconds,
        }


def run_campaign(
    spec: CampaignSpec,
    store_path: str,
    *,
    workers: int = 1,
    force: bool = False,
    cache_dir: str | None = None,
    progress: Callable[[str], None] | None = None,
    telemetry: "obs_core.Telemetry | None" = None,
    heartbeat: Callable[[HeartbeatEvent], None] | None = None,
    heartbeat_interval: float = 2.0,
) -> CampaignRunResult:
    """Expand ``spec`` and execute every scenario not already in the store.

    Args:
        spec: the campaign to run.
        store_path: JSONL result store to append to (created if missing).
        workers: worker processes; ``1`` runs scenarios in-process (no pool),
            which is also the fallback when only one scenario is pending.
        force: re-run scenarios whose fingerprints are already stored
            (appending fresh rows) instead of skipping them.
        cache_dir: optional stage-cache directory shared by every scenario
            (and safe to share across campaigns): scenarios with the same
            generation knobs generate the image once and restore it from the
            cache afterwards.  Workers race benignly — cache writes are
            atomic and content-addressed.
        progress: optional callback receiving one human-readable line per
            scenario scheduled or skipped.
        telemetry: optional :class:`repro.obs.Telemetry` (defaults to the
            context-bound one).  When set, every scenario runs observed in
            its worker and the per-worker snapshots merge back into this
            object — counters add, latency histograms merge bucket-wise —
            so one parent snapshot covers the whole sweep.
        heartbeat: optional callback receiving :class:`HeartbeatEvent` beats
            while scenarios execute (progress, rolling rate, ETA).
        heartbeat_interval: seconds between steady-state beats.

    Returns:
        A :class:`CampaignRunResult`; rows land in the store as a side effect.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    start = time.perf_counter()
    tele = telemetry if telemetry is not None else obs_core.current()
    store = ResultStore(store_path)
    scenarios = spec.expand()
    completed = store.fingerprints() if not force else set()

    pending: list[Scenario] = []
    result = CampaignRunResult(
        campaign=spec.name, store_path=store_path, total_scenarios=len(scenarios)
    )
    for scenario in scenarios:
        if scenario.fingerprint in completed:
            result.skipped.append(scenario.scenario_id)
            if progress:
                progress(f"skip {scenario.scenario_id} (already in store)")
        else:
            pending.append(scenario)
            if progress:
                progress(f"run  {scenario.scenario_id}")

    # Rows are appended as they complete (in scenario order, no matter which
    # worker finishes first), so a failure partway through keeps every
    # finished scenario in the store and the next run resumes from the crash
    # point via fingerprints.
    payloads = [scenario.payload() for scenario in pending]
    for payload in payloads:
        if cache_dir:
            payload["cache_dir"] = cache_dir
        if tele is not None:
            payload["telemetry"] = True

    hb = (
        _Heartbeat(heartbeat, heartbeat_interval, spec.name, len(pending), len(result.skipped))
        if heartbeat is not None
        else None
    )

    def consume(row: dict) -> dict:
        snapshot = row.pop(TELEMETRY_KEY, None)
        if tele is not None and snapshot is not None:
            tele.merge(snapshot)
        return row

    campaign_span = (
        tele.span("campaign_run", campaign=spec.name, scenarios=str(len(pending)))
        if tele is not None
        else contextlib.nullcontext()
    )
    with campaign_span:
        if hb is not None:
            hb.beat(0, [_running_pair(s) for s in pending[:workers]], force=True)
        if len(payloads) <= 1 or workers == 1:
            for index, (scenario, payload) in enumerate(zip(pending, payloads)):
                if hb is not None:
                    hb.beat(index, [_running_pair(scenario)])
                store.append(consume(run_scenario(payload)))
                result.executed.append(scenario.scenario_id)
                if hb is not None:
                    hb.completed()
                    hb.beat(
                        index + 1,
                        [_running_pair(s) for s in pending[index + 1 : index + 1 + workers]],
                        force=index + 1 == len(pending),
                    )
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
                futures = [pool.submit(run_scenario, payload) for payload in payloads]
                for index, (scenario, future) in enumerate(zip(pending, futures)):
                    if hb is None:
                        row = future.result()
                    else:
                        while True:
                            try:
                                row = future.result(timeout=hb.interval)
                                break
                            except TimeoutError:
                                hb.beat(*_pool_progress(pending, futures, workers))
                    store.append(consume(row))
                    result.executed.append(scenario.scenario_id)
                    if hb is not None:
                        hb.completed()
                        done, running = _pool_progress(pending, futures, workers)
                        hb.beat(done, running, force=index + 1 == len(pending))

    result.wall_seconds = time.perf_counter() - start
    return result


def _running_pair(scenario: Scenario) -> tuple[str, str]:
    return (scenario.scenario_id, scenario.fingerprint[:12])


def _pool_progress(
    pending: list[Scenario], futures: list, workers: int
) -> tuple[int, list[tuple[str, str]]]:
    """(completed count, in-flight id/fingerprint pairs) for a future list."""
    done = 0
    running: list[tuple[str, str]] = []
    for scenario, future in zip(pending, futures):
        if future.done():
            done += 1
        elif len(running) < workers:
            running.append(_running_pair(scenario))
    return done, running
