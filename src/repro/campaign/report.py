"""Campaign reporting and regression tracking.

``render_report`` turns a result store into per-metric tables across the
sweep axes; ``compare`` diffs two stores (e.g. produced by two git revisions
running the same spec) and classifies every beyond-tolerance metric change:

* **regression** — the metric moved in its *worse* direction (cost metrics
  up, goodness metrics down);
* **improvement** — it moved in its better direction;
* **drift** — it changed but the metric has no inherent direction (counts,
  byte totals): still worth a look, not a failure.

Directionality is inferred from the metric leaf name (``…_ms`` and
``…_seconds`` are costs, scores / hit ratios / throughputs are goodness,
everything else neutral), so steps added later get sensible treatment
without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.bench.common import format_rows
from repro.campaign.store import deterministic_view

__all__ = [
    "metric_names",
    "metric_direction",
    "render_report",
    "compare",
    "ComparisonResult",
    "MetricDelta",
]

#: leaf names (after the final ``.``) whose increase is a regression.
_LOWER_IS_BETTER_SUFFIXES = ("_ms", "_seconds")
_LOWER_IS_BETTER_NAMES = frozenset({"skipped", "score_error", "files_skipped_binary"})
#: leaf names whose decrease is a regression.
_HIGHER_IS_BETTER_SUFFIXES = ("_score", "_ratio", "_ops_s", "_per_second")
_HIGHER_IS_BETTER_NAMES = frozenset({"layout_score", "executed"})


def metric_direction(name: str) -> str:
    """``"lower"``, ``"higher"``, or ``"neutral"`` — which way is better."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf in _LOWER_IS_BETTER_NAMES or leaf.endswith(_LOWER_IS_BETTER_SUFFIXES):
        return "lower"
    if leaf in _HIGHER_IS_BETTER_NAMES or leaf.endswith(_HIGHER_IS_BETTER_SUFFIXES):
        return "higher"
    return "neutral"


def metric_names(rows: Iterable[Mapping]) -> list[str]:
    """Every metric name appearing in ``rows``, sorted."""
    names: set[str] = set()
    for row in rows:
        names.update(row.get("metrics", {}))
    return sorted(names)


def render_report(
    rows: Sequence[Mapping],
    metrics: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """One aligned table: a row per scenario, sweep axes then metrics.

    Args:
        rows: result rows (typically ``ResultStore.latest_rows().values()``
            in scenario order).
        metrics: metric names to show; all of them by default.
        title: optional table title.
    """
    rows = list(rows)
    if not rows:
        return "no results"
    available = metric_names(rows)
    if metrics:
        missing = sorted(set(metrics) - set(available))
        if missing:
            raise ValueError(f"unknown metric(s) {missing}; available: {available}")
        selected = list(metrics)
    else:
        selected = available

    axes: list[str] = []
    for row in rows:
        for axis in row.get("params", {}):
            if axis not in axes:
                axes.append(axis)

    headers = axes + selected
    table_rows = []
    for row in rows:
        params = row.get("params", {})
        values = row.get("metrics", {})
        table_rows.append(
            [params.get(axis, "-") for axis in axes]
            + [values.get(metric, "-") for metric in selected]
        )
    return format_rows(headers, table_rows, title=title)


@dataclass(frozen=True)
class MetricDelta:
    """One beyond-tolerance metric change between two stores."""

    scenario: str
    metric: str
    baseline: float
    candidate: float
    relative_change: float
    classification: str  # "regression" | "improvement" | "drift"

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "relative_change": self.relative_change,
            "classification": self.classification,
        }

    def describe(self) -> str:
        return (
            f"{self.scenario} {self.metric}: "
            f"{self.baseline:g} -> {self.candidate:g} "
            f"({self.relative_change:+.1%}, {self.classification})"
        )


@dataclass
class ComparisonResult:
    """Outcome of comparing a candidate store against a baseline."""

    tolerance: float
    compared_scenarios: int = 0
    compared_metrics: int = 0
    regressions: list[MetricDelta] = field(default_factory=list)
    improvements: list[MetricDelta] = field(default_factory=list)
    drifts: list[MetricDelta] = field(default_factory=list)
    only_in_baseline: list[str] = field(default_factory=list)
    only_in_candidate: list[str] = field(default_factory=list)
    identical_rows: int = 0

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def as_dict(self) -> dict:
        return {
            "tolerance": self.tolerance,
            "compared_scenarios": self.compared_scenarios,
            "compared_metrics": self.compared_metrics,
            "identical_rows": self.identical_rows,
            "regressions": [delta.as_dict() for delta in self.regressions],
            "improvements": [delta.as_dict() for delta in self.improvements],
            "drifts": [delta.as_dict() for delta in self.drifts],
            "only_in_baseline": list(self.only_in_baseline),
            "only_in_candidate": list(self.only_in_candidate),
        }

    def render_text(self) -> str:
        lines = [
            f"compared {self.compared_scenarios} scenarios / "
            f"{self.compared_metrics} metrics at tolerance {self.tolerance:.1%}"
            f" ({self.identical_rows} rows identical)"
        ]
        for label, deltas in (
            ("REGRESSION", self.regressions),
            ("improvement", self.improvements),
            ("drift", self.drifts),
        ):
            for delta in deltas:
                lines.append(f"  {label}: {delta.describe()}")
        if self.only_in_baseline:
            lines.append(f"  only in baseline: {', '.join(self.only_in_baseline)}")
        if self.only_in_candidate:
            lines.append(f"  only in candidate: {', '.join(self.only_in_candidate)}")
        if not (self.regressions or self.improvements or self.drifts):
            lines.append("  no metric changes beyond tolerance")
        return "\n".join(lines)


def compare(
    baseline_rows: Mapping[str, Mapping],
    candidate_rows: Mapping[str, Mapping],
    tolerance: float = 0.05,
) -> ComparisonResult:
    """Diff two stores' latest rows, keyed by scenario id.

    Scenarios are joined on their id (stable across code revisions even when
    fingerprints move); numeric metrics present on both sides are compared
    with relative tolerance.  A zero baseline compares exactly: any nonzero
    candidate value is beyond tolerance.

    Args:
        baseline_rows: ``ResultStore.latest_rows()`` of the reference run.
        candidate_rows: same, for the run under test.
        tolerance: allowed relative change before a metric is flagged.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    result = ComparisonResult(tolerance=tolerance)
    result.only_in_baseline = sorted(set(baseline_rows) - set(candidate_rows))
    result.only_in_candidate = sorted(set(candidate_rows) - set(baseline_rows))

    for scenario in sorted(set(baseline_rows) & set(candidate_rows)):
        base_row = baseline_rows[scenario]
        cand_row = candidate_rows[scenario]
        result.compared_scenarios += 1
        if deterministic_view(base_row) == deterministic_view(cand_row):
            result.identical_rows += 1
        base_metrics = base_row.get("metrics", {})
        cand_metrics = cand_row.get("metrics", {})
        for metric in sorted(set(base_metrics) & set(cand_metrics)):
            base_value = base_metrics[metric]
            cand_value = cand_metrics[metric]
            if isinstance(base_value, bool) or isinstance(cand_value, bool):
                continue
            if not isinstance(base_value, (int, float)) or not isinstance(
                cand_value, (int, float)
            ):
                continue
            result.compared_metrics += 1
            if base_value == cand_value:
                continue
            if base_value == 0.0:
                relative = float("inf") if cand_value else 0.0
            else:
                relative = (cand_value - base_value) / abs(base_value)
            if abs(relative) <= tolerance:
                continue
            direction = metric_direction(metric)
            if direction == "neutral":
                classification = "drift"
            elif (direction == "lower") == (relative > 0):
                classification = "regression"
            else:
                classification = "improvement"
            delta = MetricDelta(
                scenario=scenario,
                metric=metric,
                baseline=float(base_value),
                candidate=float(cand_value),
                relative_change=relative,
                classification=classification,
            )
            getattr(result, classification + "s").append(delta)
    return result
