"""Declarative campaign specifications and scenario expansion.

A campaign spec is a plain JSON document (or dict) describing a *sweep* of
file-system benchmarking scenarios, in the declarative what-if style FBench
argues for:

.. code-block:: json

    {
      "name": "layout-sweep",
      "base": {"num_files": 2000, "num_directories": 400},
      "sweep": {
        "num_files": [1000, 2000, 4000],
        "layout_score": [1.0, 0.6],
        "seed": [1, 2]
      },
      "steps": [
        {"step": "find"},
        {"step": "trace_replay", "kind": "zipf", "ops": 5000}
      ]
    }

``base`` holds :data:`~repro.core.config.KNOB_NAMES` knobs shared by every
scenario; ``sweep`` maps knob names to value lists and expands to their cross
product (axes vary in declaration order, last axis fastest); ``steps`` names
registered scenario steps (:mod:`repro.campaign.registry`) to run against
each generated image.

Every expanded :class:`Scenario` carries a *fingerprint*: the SHA-256 of the
canonical JSON of its fully resolved knob set (normalized through
:meth:`ImpressionsConfig.from_knobs` / :meth:`~ImpressionsConfig.to_knobs`,
so two spellings of the same config collide) plus its step list.  The result
store keys completed work by fingerprint, which is what makes re-runs
incremental and comparisons across stores well-defined.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.campaign.registry import get_step
from repro.core.config import KNOB_NAMES, ImpressionsConfig

__all__ = [
    "CampaignSpec",
    "Scenario",
    "SpecError",
    "SPEC_FORMAT_VERSION",
    "scenario_fingerprint",
]

#: Bumped when the scenario fingerprint recipe changes, so stores written by
#: incompatible code never silently satisfy a resume.
SPEC_FORMAT_VERSION = 1


class SpecError(ValueError):
    """Raised when a campaign spec document is malformed."""


@dataclass(frozen=True)
class Scenario:
    """One concrete cell of a campaign's sweep grid.

    Attributes:
        campaign: name of the campaign the scenario belongs to.
        scenario_id: human-readable identity, e.g.
            ``layout-sweep[num_files=1000,layout_score=0.6,seed=1]`` —
            stable across runs and the join key ``campaign compare`` uses.
        params: the swept axis values of this cell (axis → value).
        knobs: the fully resolved config knob set (base ∪ params, normalized
            to include every default).
        steps: the step specs to run, in order.
        fingerprint: SHA-256 hex digest identifying (knobs, steps).
    """

    campaign: str
    scenario_id: str
    params: Mapping[str, object]
    knobs: Mapping[str, object]
    steps: tuple[Mapping[str, object], ...]
    fingerprint: str

    def config(self) -> ImpressionsConfig:
        return ImpressionsConfig.from_knobs(self.knobs)

    def payload(self) -> dict:
        """The picklable dict shipped to worker processes and result rows."""
        return {
            "campaign": self.campaign,
            "scenario": self.scenario_id,
            "params": dict(self.params),
            "knobs": dict(self.knobs),
            "steps": [dict(step) for step in self.steps],
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated campaign document."""

    name: str
    base: Mapping[str, object] = field(default_factory=dict)
    sweep: Mapping[str, Sequence[object]] = field(default_factory=dict)
    steps: tuple[Mapping[str, object], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecError("campaign spec needs a non-empty string 'name'")
        for source, mapping in (("base", self.base), ("sweep", self.sweep)):
            unknown = sorted(set(mapping) - KNOB_NAMES)
            if unknown:
                raise SpecError(
                    f"unknown knob(s) {unknown} in campaign {source!r}; "
                    f"valid knobs: {sorted(KNOB_NAMES)}"
                )
        for axis, values in self.sweep.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise SpecError(f"sweep axis {axis!r} must be a list of values")
            if not values:
                raise SpecError(f"sweep axis {axis!r} must not be empty")
        if not self.steps:
            raise SpecError("campaign spec needs at least one step")
        for step in self.steps:
            if not isinstance(step, Mapping) or not isinstance(step.get("step"), str):
                raise SpecError(f"each step needs a string 'step' name, got {step!r}")
            try:
                get_step(step["step"])
            except ValueError as error:
                raise SpecError(str(error)) from error
        # Resolve one cell eagerly so bad knob *values* (not just names) fail
        # at parse time instead of inside a worker process.
        first = {axis: values[0] for axis, values in self.sweep.items()}
        try:
            _resolved_knobs({**dict(self.base), **first})
        except ValueError as error:
            raise SpecError(f"invalid campaign knob values: {error}") from error

    # Construction -----------------------------------------------------------

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "CampaignSpec":
        if not isinstance(document, Mapping):
            raise SpecError("campaign spec must be a JSON object")
        unknown = sorted(set(document) - {"name", "base", "sweep", "steps", "description"})
        if unknown:
            raise SpecError(f"unknown campaign spec key(s) {unknown}")
        steps = document.get("steps", ())
        if not isinstance(steps, Sequence) or isinstance(steps, (str, bytes)):
            raise SpecError("'steps' must be a list of step objects")
        return cls(
            name=document.get("name", ""),
            base=dict(document.get("base", {}) or {}),
            sweep=dict(document.get("sweep", {}) or {}),
            steps=tuple(dict(step) if isinstance(step, Mapping) else step for step in steps),
            description=str(document.get("description", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"campaign spec is not valid JSON: {error}") from error
        return cls.from_dict(document)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "base": dict(self.base),
            "sweep": {axis: list(values) for axis, values in self.sweep.items()},
            "steps": [dict(step) for step in self.steps],
        }
        if self.description:
            out["description"] = self.description
        return out

    # Expansion --------------------------------------------------------------

    @property
    def num_scenarios(self) -> int:
        count = 1
        for values in self.sweep.values():
            count *= len(values)
        return count

    def expand(self) -> list[Scenario]:
        """The cross product of the sweep axes, as concrete scenarios.

        Axes vary in declaration order with the last axis fastest, so the
        scenario order — and therefore the result-store row order — is a pure
        function of the spec.
        """
        axes = list(self.sweep.keys())
        scenarios = []
        for combination in itertools.product(*(self.sweep[axis] for axis in axes)):
            params = dict(zip(axes, combination))
            knobs = _resolved_knobs({**dict(self.base), **params})
            rendered = ",".join(f"{axis}={_render(value)}" for axis, value in params.items())
            scenario_id = f"{self.name}[{rendered}]" if rendered else self.name
            scenarios.append(
                Scenario(
                    campaign=self.name,
                    scenario_id=scenario_id,
                    params=params,
                    knobs=knobs,
                    steps=self.steps,
                    fingerprint=scenario_fingerprint(knobs, self.steps),
                )
            )
        return scenarios


def scenario_fingerprint(
    knobs: Mapping[str, object], steps: Iterable[Mapping[str, object]]
) -> str:
    """SHA-256 identity of a scenario: config identity + ordered step specs.

    The config component is :meth:`ImpressionsConfig.fingerprint` — the same
    digest ``impressions --json`` reports as ``config_fingerprint`` — so a
    scenario's identity is visibly derived from its config's.
    """
    canonical = json.dumps(
        {
            "format": SPEC_FORMAT_VERSION,
            "config": ImpressionsConfig.from_knobs(knobs).fingerprint(),
            "steps": [dict(step) for step in steps],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _resolved_knobs(knobs: Mapping[str, object]) -> dict:
    """Normalize a partial knob mapping to the full defaulted knob set."""
    return ImpressionsConfig.from_knobs(knobs).to_knobs()


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
