"""Resolve a baseline result store from a git revision.

``impressions campaign compare`` gates CI on metric regressions between two
stores.  Requiring both stores as explicit paths makes the common case —
"compare my working tree against what ``main`` produced" — needlessly
manual.  :func:`resolve_store_from_git` automates it:

1. **Committed artifact**: if the store file exists at the revision, extract
   it with ``git show REV:path`` into a temporary file.
2. **Regenerate**: otherwise, when a campaign spec is given, check the
   revision out into a temporary ``git worktree`` and run *that revision's
   code* (``PYTHONPATH=<worktree>/src``) over the spec, producing a fresh
   baseline store.  The worktree is always removed afterwards.

Only ``git`` itself is shelled out to; no external dependencies.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile

from repro.campaign.store import StoreError

__all__ = ["GitStoreError", "resolve_store_from_git"]


class GitStoreError(StoreError):
    """Raised when a revision's store artifact cannot be resolved."""


def _run_git(args: list[str], cwd: str) -> subprocess.CompletedProcess:
    try:
        return subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=False, check=False
        )
    except FileNotFoundError as error:  # pragma: no cover - git always in CI
        raise GitStoreError("git executable not found on PATH") from error


def _repo_toplevel(repo_dir: str) -> str:
    result = _run_git(["rev-parse", "--show-toplevel"], cwd=repo_dir)
    if result.returncode != 0:
        raise GitStoreError(
            f"{os.path.abspath(repo_dir)!r} is not inside a git repository "
            f"({result.stderr.decode(errors='replace').strip()})"
        )
    return result.stdout.decode().strip()


def _rev_relative_path(toplevel: str, store_path: str) -> str:
    absolute = os.path.abspath(store_path)
    relative = os.path.relpath(absolute, toplevel)
    if relative.startswith(".."):
        raise GitStoreError(
            f"store path {store_path!r} lies outside the git repository {toplevel!r}"
        )
    return relative.replace(os.sep, "/")


def _extract_committed_store(
    toplevel: str, revision: str, relative: str, target_dir: str
) -> str | None:
    """``git show REV:path`` into ``target_dir``; None when absent at REV."""
    result = _run_git(["show", f"{revision}:{relative}"], cwd=toplevel)
    if result.returncode != 0:
        return None
    path = os.path.join(target_dir, "baseline.jsonl")
    with open(path, "wb") as handle:
        handle.write(result.stdout)
    return path


def _regenerate_store(
    toplevel: str, revision: str, spec_path: str, target_dir: str, workers: int
) -> str:
    """Run ``REV``'s code over ``spec_path`` in a temporary worktree."""
    worktree = os.path.join(target_dir, "worktree")
    added = _run_git(["worktree", "add", "--detach", worktree, revision], cwd=toplevel)
    if added.returncode != 0:
        raise GitStoreError(
            f"cannot create a worktree for {revision!r}: "
            f"{added.stderr.decode(errors='replace').strip()}"
        )
    store_path = os.path.join(target_dir, "baseline.jsonl")
    try:
        source = os.path.join(worktree, "src")
        if not os.path.isdir(source):
            raise GitStoreError(f"revision {revision!r} has no src/ layout to run")
        environment = dict(os.environ)
        environment["PYTHONPATH"] = source + (
            os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
        )
        command = [
            sys.executable,
            "-m",
            "repro.core.cli",
            "campaign",
            "run",
            os.path.abspath(spec_path),
            "--store",
            store_path,
            "--workers",
            str(workers),
            "--quiet",
        ]
        completed = subprocess.run(
            command, cwd=worktree, env=environment, capture_output=True, text=True
        )
        if completed.returncode != 0:
            raise GitStoreError(
                f"regenerating the baseline at {revision!r} failed "
                f"(exit {completed.returncode}): {completed.stderr.strip()[-2000:]}"
            )
    finally:
        _run_git(["worktree", "remove", "--force", worktree], cwd=toplevel)
    return store_path


def resolve_store_from_git(
    revision: str,
    store_path: str,
    *,
    repo_dir: str = ".",
    spec_path: str | None = None,
    workers: int = 1,
    target_dir: str | None = None,
) -> str:
    """Materialize the baseline store of ``revision`` and return its path.

    Args:
        revision: any git revision expression (``main``, ``HEAD~3``, a sha).
        store_path: the store's path — looked up *at the revision* first
            (relative to the repository root), so a committed
            ``campaign-results.jsonl`` works with zero setup.
        repo_dir: directory inside the repository to resolve against.
        spec_path: campaign spec used to *regenerate* the baseline in a
            temporary worktree when the store is not committed at the
            revision; without it, a missing artifact is an error.
        workers: worker processes for a regeneration run.
        target_dir: directory receiving the resolved store (a fresh
            temporary directory by default).  On success the caller owns
            cleanup — the returned path lives inside it; a self-created
            scratch directory is removed when resolution fails.

    Raises:
        GitStoreError: unknown revision, path outside the repository,
            missing artifact without a spec, or a failed regeneration run.
    """
    toplevel = _repo_toplevel(repo_dir)
    verify = _run_git(["rev-parse", "--verify", f"{revision}^{{commit}}"], cwd=toplevel)
    if verify.returncode != 0:
        raise GitStoreError(
            f"unknown git revision {revision!r}: "
            f"{verify.stderr.decode(errors='replace').strip()}"
        )
    owns_target = target_dir is None
    if target_dir is None:
        target_dir = tempfile.mkdtemp(prefix="impressions-git-baseline-")
    else:
        os.makedirs(target_dir, exist_ok=True)
    try:
        relative = _rev_relative_path(toplevel, store_path)
        extracted = _extract_committed_store(toplevel, revision, relative, target_dir)
        if extracted is not None:
            return extracted
        if spec_path is None:
            raise GitStoreError(
                f"{relative!r} does not exist at revision {revision!r}; commit the store "
                "or pass --spec to regenerate the baseline from that revision's code"
            )
        return _regenerate_store(toplevel, revision, spec_path, target_dir, workers)
    except BaseException:
        # A self-created scratch directory must not outlive a failed resolve
        # (the caller never learns its path to clean it up).
        if owns_target:
            shutil.rmtree(target_dir, ignore_errors=True)
        raise
