"""``impressions campaign`` subcommands.

Five verbs::

    impressions campaign run sweep.json --store results.jsonl --workers 4
    impressions campaign list sweep.json --store results.jsonl
    impressions campaign report --store results.jsonl --metric find.elapsed_ms
    impressions campaign compare baseline.jsonl results.jsonl --tolerance 0.1
    impressions campaign compare results.jsonl --against-git main
    impressions campaign gc --store results.jsonl --dry-run

``run`` expands the spec, executes pending scenarios across a worker pool,
and appends result rows to the store (scenarios whose fingerprint is already
stored are skipped — re-running a finished campaign is free).  ``list`` shows
the expanded grid with fingerprints and completion state.  ``report`` renders
per-metric tables across the sweep axes.  ``compare`` diffs two stores and
exits nonzero when it finds metric regressions beyond the tolerance, so it
can gate CI; ``--against-git REV`` resolves the baseline store from a git
revision instead of a second path — extracting the committed artifact with
``git show``, or (with ``--spec``) regenerating it from that revision's code
in a temporary worktree.  ``gc`` compacts a long-lived store down to the
newest row per fingerprint (``--dry-run`` reports the reclaimable bytes).
Every verb accepts ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.campaign.registry import step_names
from repro.campaign.report import compare, metric_names, render_report
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import ResultStore, StoreError
from repro.pipeline.stage import PipelineError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions campaign",
        description="Declarative scenario sweeps with parallel execution and regression tracking.",
        epilog=f"Registered steps: {', '.join(step_names())}.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute a campaign spec")
    run.add_argument("spec", help="campaign spec (JSON file)")
    run.add_argument(
        "--store",
        default="campaign-results.jsonl",
        metavar="PATH",
        help="JSONL result store to append to (default: %(default)s)",
    )
    run.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: %(default)s)"
    )
    run.add_argument(
        "--force", action="store_true", help="re-run scenarios already in the store"
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "stage-cache directory: scenarios sharing generation knobs "
            "reuse the cached image instead of regenerating it"
        ),
    )
    run.add_argument("--json", action="store_true", help="print a JSON summary")
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress and heartbeats"
    )
    run.add_argument(
        "--obs-dir",
        metavar="PATH",
        default=None,
        help=(
            "observe the whole sweep: every scenario runs under telemetry, "
            "per-worker snapshots merge into one parent snapshot written here"
        ),
    )
    run.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between live progress beats on stderr (default: %(default)s)",
    )

    lst = commands.add_parser("list", help="show a spec's expanded scenarios")
    lst.add_argument("spec", help="campaign spec (JSON file)")
    lst.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="result store to check completion against",
    )
    lst.add_argument("--json", action="store_true", help="print scenarios as JSON")

    report = commands.add_parser("report", help="render result tables across the sweep")
    report.add_argument("--store", required=True, metavar="PATH", help="JSONL result store")
    report.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="metric to include (repeatable; default: all)",
    )
    report.add_argument("--json", action="store_true", help="print rows as JSON")

    cmp_parser = commands.add_parser(
        "compare", help="diff two result stores and flag regressions"
    )
    cmp_parser.add_argument(
        "stores",
        nargs="+",
        metavar="STORE",
        help=(
            "BASELINE CANDIDATE store paths (JSONL); with --against-git, just "
            "CANDIDATE — the baseline is resolved from the revision"
        ),
    )
    cmp_parser.add_argument(
        "--against-git",
        metavar="REV",
        default=None,
        help=(
            "resolve the baseline from a git revision: extract the store "
            "committed at REV (git show), or regenerate it from REV's code "
            "in a temporary worktree when --spec is given"
        ),
    )
    cmp_parser.add_argument(
        "--git-path",
        metavar="PATH",
        default=None,
        help=(
            "store path to look up at the revision (default: the candidate "
            "store's path)"
        ),
    )
    cmp_parser.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help="campaign spec for regenerating a baseline missing at the revision",
    )
    cmp_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for a regeneration run"
    )
    cmp_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed relative metric change (default: %(default)s)",
    )
    cmp_parser.add_argument(
        "--allow-missing",
        action="store_true",
        help=(
            "do not fail when the candidate store is missing baseline scenarios "
            "(by default an incomplete candidate fails the gate)"
        ),
    )
    cmp_parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "treat STORE paths as telemetry artifacts (--obs-dir directories "
            "or events.jsonl files) and diff their metric snapshots instead "
            "of result stores"
        ),
    )
    cmp_parser.add_argument("--json", action="store_true", help="print the diff as JSON")

    gc = commands.add_parser(
        "gc", help="compact a store: keep only the newest row per fingerprint"
    )
    gc.add_argument("--store", required=True, metavar="PATH", help="JSONL result store")
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be dropped and the bytes reclaimed, change nothing",
    )
    gc.add_argument("--json", action="store_true", help="print the report as JSON")
    return parser


def _run_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    progress = None if (args.quiet or args.json) else lambda line: print(line)
    # Live progress goes to stderr so --json keeps stdout machine-readable.
    heartbeat = (
        None
        if args.quiet
        else lambda event: print(event.render(), file=sys.stderr, flush=True)
    )
    telemetry = None
    if args.obs_dir:
        from repro import obs

        telemetry = obs.Telemetry(run_id=f"campaign-{spec.name}")
    result = run_campaign(
        spec,
        args.store,
        workers=args.workers,
        force=args.force,
        cache_dir=args.cache_dir,
        progress=progress,
        telemetry=telemetry,
        heartbeat=heartbeat,
        heartbeat_interval=args.heartbeat_interval,
    )
    obs_paths = None
    if telemetry is not None:
        from repro import obs

        obs_paths = obs.save(telemetry, args.obs_dir)
    if args.json:
        payload = result.as_dict()
        if obs_paths is not None:
            payload["obs"] = {"dir": args.obs_dir, "artifacts": obs_paths}
        print(json.dumps(payload, sort_keys=True))
    else:
        print(
            f"campaign {result.campaign}: {len(result.executed)} scenario(s) executed, "
            f"{len(result.skipped)} skipped (already in {result.store_path}), "
            f"{result.wall_seconds:.2f} s"
        )
        if obs_paths is not None:
            print(f"telemetry written to {args.obs_dir} ({', '.join(sorted(obs_paths))})")
    return 0


def _run_list(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    completed = ResultStore(args.store).fingerprints() if args.store else set()
    scenarios = spec.expand()
    if args.json:
        payload = [
            {
                "scenario": scenario.scenario_id,
                "fingerprint": scenario.fingerprint,
                "params": dict(scenario.params),
                "completed": scenario.fingerprint in completed,
            }
            for scenario in scenarios
        ]
        print(json.dumps(payload, sort_keys=True))
        return 0
    print(f"campaign {spec.name}: {len(scenarios)} scenario(s)")
    for scenario in scenarios:
        state = "done" if scenario.fingerprint in completed else "pending"
        print(f"  [{state:7s}] {scenario.scenario_id}  {scenario.fingerprint[:12]}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not store.exists():
        raise SystemExit(f"impressions campaign report: error: no such store {args.store}")
    latest = store.latest_rows()
    rows = list(latest.values())
    if args.json:
        print(
            json.dumps(
                {"rows": rows, "metrics": metric_names(rows)}, sort_keys=True
            )
        )
        return 0
    title = None
    if rows:
        title = f"Campaign {rows[0].get('campaign', '?')} ({len(rows)} scenarios)"
    print(render_report(rows, metrics=args.metric, title=title))
    return 0


def _compare_obs(args: argparse.Namespace, baseline_path: str, candidate_path: str) -> int:
    """Diff two telemetry snapshots with the campaign comparison machinery."""
    from repro.obs.export import compare_rows, read_events_jsonl, resolve_events_path

    rows = []
    for path in (baseline_path, candidate_path):
        telemetry = read_events_jsonl(resolve_events_path(path))
        rows.append(compare_rows(telemetry))
    result = compare(rows[0], rows[1], tolerance=args.tolerance)
    if args.json:
        payload = result.as_dict()
        payload["failed"] = result.has_regressions
        print(json.dumps(payload, sort_keys=True))
    else:
        print(result.render_text())
    return 1 if result.has_regressions else 0


def _run_compare(args: argparse.Namespace) -> int:
    if args.obs:
        if args.against_git:
            raise SystemExit(
                "impressions campaign compare: error: --obs cannot be combined "
                "with --against-git (telemetry artifacts are not stored in git)"
            )
        if len(args.stores) != 2:
            raise SystemExit(
                "impressions campaign compare: error: --obs expects BASELINE "
                "and CANDIDATE telemetry paths (obs dirs or events.jsonl files)"
            )
        return _compare_obs(args, *args.stores)
    if args.against_git:
        if len(args.stores) != 1:
            raise SystemExit(
                "impressions campaign compare: error: --against-git takes exactly "
                "one CANDIDATE store (the baseline comes from the revision)"
            )
        import tempfile

        from repro.campaign.gitstore import resolve_store_from_git

        candidate_path = args.stores[0]
        with tempfile.TemporaryDirectory(prefix="impressions-git-baseline-") as scratch:
            baseline_path = resolve_store_from_git(
                args.against_git,
                args.git_path or candidate_path,
                spec_path=args.spec,
                workers=args.workers,
                target_dir=scratch,
            )
            return _compare_stores(args, baseline_path, candidate_path)
    if len(args.stores) != 2:
        raise SystemExit(
            "impressions campaign compare: error: expected BASELINE and "
            "CANDIDATE store paths (or --against-git REV with one store)"
        )
    return _compare_stores(args, *args.stores)


def _compare_stores(args: argparse.Namespace, baseline_path: str, candidate_path: str) -> int:
    baseline = ResultStore(baseline_path)
    candidate = ResultStore(candidate_path)
    for store in (baseline, candidate):
        if not store.exists():
            raise SystemExit(
                f"impressions campaign compare: error: no such store {store.path}"
            )
    baseline_rows = baseline.latest_rows()
    result = compare(baseline_rows, candidate.latest_rows(), tolerance=args.tolerance)
    # The gate must not pass vacuously: a truncated or empty candidate store
    # (crashed run, wrong path) is a failure unless explicitly allowed.
    incomplete = bool(result.only_in_baseline) or (
        result.compared_scenarios == 0 and bool(baseline_rows)
    )
    failed = result.has_regressions or (incomplete and not args.allow_missing)
    if args.json:
        payload = result.as_dict()
        payload["failed"] = failed
        print(json.dumps(payload, sort_keys=True))
    else:
        print(result.render_text())
        if incomplete and not args.allow_missing:
            print(
                "FAIL: candidate store is missing baseline scenario(s) "
                "(pass --allow-missing to tolerate an incomplete candidate)"
            )
    return 1 if failed else 0


def _run_gc(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not store.exists():
        raise SystemExit(f"impressions campaign gc: error: no such store {args.store}")
    report = store.compact(dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    verb = "would drop" if args.dry_run else "dropped"
    print(
        f"{args.store}: {verb} {report['rows_dropped']} superseded row(s) of "
        f"{report['rows_before']}, reclaiming {report['bytes_reclaimed']} bytes "
        f"({report['bytes_before']} -> {report['bytes_after']})"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``impressions campaign ...``."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run_run(args)
        if args.command == "list":
            return _run_list(args)
        if args.command == "report":
            return _run_report(args)
        if args.command == "gc":
            return _run_gc(args)
        return _run_compare(args)
    except (SpecError, StoreError, PipelineError, ValueError) as error:
        raise SystemExit(f"impressions campaign {args.command}: error: {error}")
    except OSError as error:
        raise SystemExit(f"impressions campaign {args.command}: error: {error}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
