"""Campaigns: declarative scenario sweeps, parallel execution, regression tracking.

The campaign subsystem turns the reproduction into a benchmarking *system*:
a JSON spec declares a base configuration, parameter-grid sweeps over any
:data:`~repro.core.config.KNOB_NAMES` knob (file counts, layout scores,
content policies, seeds, …), and a list of scenario steps (workload
simulators, trace replays, aging, bench drivers).  The runner expands the
grid, executes scenarios across a process pool, and appends one canonical
JSON row per scenario to an append-only JSONL store keyed by spec+seed
fingerprints — so re-runs skip finished work, and two stores (two runs, two
git revisions) can be diffed for metric regressions.

* :mod:`repro.campaign.spec` — spec parsing, scenario expansion, fingerprints.
* :mod:`repro.campaign.registry` — named scenario steps.
* :mod:`repro.campaign.runner` — process-pool execution.
* :mod:`repro.campaign.store` — the append-only JSONL result store.
* :mod:`repro.campaign.report` — sweep tables and store comparison.
* :mod:`repro.campaign.cli` — ``impressions campaign run|list|report|compare``.
"""

from repro.campaign.registry import StepFunction, get_step, register_step, step_names
from repro.campaign.report import (
    ComparisonResult,
    MetricDelta,
    compare,
    metric_direction,
    metric_names,
    render_report,
)
from repro.campaign.runner import CampaignRunResult, run_campaign, run_scenario
from repro.campaign.spec import CampaignSpec, Scenario, SpecError, scenario_fingerprint
from repro.campaign.store import ResultStore, StoreError, deterministic_view

__all__ = [
    "CampaignSpec",
    "Scenario",
    "SpecError",
    "scenario_fingerprint",
    "register_step",
    "get_step",
    "step_names",
    "StepFunction",
    "run_campaign",
    "run_scenario",
    "CampaignRunResult",
    "ResultStore",
    "StoreError",
    "deterministic_view",
    "compare",
    "ComparisonResult",
    "MetricDelta",
    "metric_direction",
    "metric_names",
    "render_report",
]
