"""Scenario-step registry.

A *step* is a named callable a campaign scenario runs against its freshly
generated image.  Registering steps by name keeps campaign specs declarative
(JSON names callables) and makes the existing workload simulators, trace
machinery, and bench drivers uniform building blocks — the RT-Bench idea of
an extensible harness with uniform result collection.

Every step has the signature::

    step(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict

and returns a flat mapping of metric name → JSON scalar.  Returned metrics
must be **deterministic** (pure functions of the scenario): wall-clock times
are measured by the runner and stored separately, so result rows stay
byte-comparable across runs.

Steps with a pipeline counterpart (``trace_replay``, ``age``, ``bench``)
delegate to the registered post-generation stages in
:mod:`repro.pipeline.registry` via :func:`~repro.pipeline.registry.run_post_stage`,
so campaign scenarios and pipeline extensions share one implementation.

Built-in steps:

``summary``
    Image shape: file/directory counts, total bytes, achieved layout score.
``find``
    :class:`~repro.workloads.find.FindSimulator` traversal
    (params: ``pattern``, ``warm_cache``).
``grep``
    :class:`~repro.workloads.grep.GrepSimulator` content scan
    (params: ``warm_cache``).
``trace_replay``
    Synthesize a trace (params: ``kind`` ∈ zipf|churn|storm, ``ops``,
    ``seed_offset``, ``warm_cache``) and replay it against the image.
``merged_replay``
    Synthesize ``clients`` per-client churn traces, interleave them with
    :func:`~repro.trace.ops.merge_traces`, replay once, and report overall
    plus per-client simulated cost.
``age``
    Trace-driven aging to ``target_score`` (params: ``seed_offset``).
``bench``
    Run a :mod:`repro.bench` driver's ``run()`` (params: ``driver`` plus the
    driver's keyword arguments) and report its scalar results.
``materialize``
    Export the image through a materialization sink (params: ``sink`` ∈
    dir|tar|manifest|null, ``path``, ``jobs``, ``order``, ``verify``) and
    report entry counts, the order-independent content digest and the
    round-trip verification outcome.  The default ``null`` sink is the one
    to sweep with: digest-only, no per-scenario paths to manage.
``sharded_generate``
    Re-generate the scenario's config through :func:`repro.shard.generate_sharded`
    (params: ``shards``, ``jobs``, ``digest``) and report the merged image's
    fingerprint, content digest and shape — all pure functions of the shard
    plan, so rows are identical across ``jobs`` values.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.config import ImpressionsConfig
from repro.core.image import FileSystemImage
from repro.pipeline.registry import replay_metrics, run_post_stage, synthesize_trace
from repro.trace.ops import merge_traces
from repro.trace.replay import TraceReplayer
from repro.trace.synthesize import ChurnSpec, synthesize_churn
from repro.workloads.find import FindSimulator
from repro.workloads.grep import GrepSimulator

__all__ = ["StepFunction", "register_step", "get_step", "step_names"]

StepFunction = Callable[[FileSystemImage, ImpressionsConfig, dict], Mapping[str, object]]

_REGISTRY: dict[str, StepFunction] = {}


def register_step(name: str) -> Callable[[StepFunction], StepFunction]:
    """Decorator registering ``function`` as the step called ``name``."""

    def decorator(function: StepFunction) -> StepFunction:
        if name in _REGISTRY:
            raise ValueError(f"step {name!r} is already registered")
        _REGISTRY[name] = function
        return function

    return decorator


def get_step(name: str) -> StepFunction:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown step {name!r}; registered steps: {step_names()}") from None


def step_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# Built-in steps --------------------------------------------------------------


@register_step("summary")
def _step_summary(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    summary = image.summary()
    return {
        "files": summary["files"],
        "directories": summary["directories"],
        "total_bytes": summary["total_bytes"],
        "layout_score": summary["layout_score"],
    }


@register_step("find")
def _step_find(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    simulator = FindSimulator(image)
    if params.get("warm_cache"):
        simulator.warm_cache()
    result = simulator.run(params.get("pattern", "target"))
    return {
        "elapsed_ms": result.elapsed_ms,
        "directories_visited": result.directories_visited,
        "entries_examined": result.entries_examined,
        "cache_hit_ratio": result.cache_hit_ratio,
    }


@register_step("grep")
def _step_grep(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    simulator = GrepSimulator(image)
    if params.get("warm_cache"):
        simulator.warm_cache()
    result = simulator.run()
    return {
        "elapsed_ms": result.elapsed_ms,
        "files_scanned": result.files_scanned,
        "files_skipped_binary": result.files_skipped_binary,
        "bytes_read": result.bytes_read,
        "cache_hit_ratio": result.cache_hit_ratio,
    }


@register_step("trace_replay")
def _step_trace_replay(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    # Delegates to the pipeline's post-generation stage so campaign steps and
    # pipeline extensions share one implementation.
    return run_post_stage("trace_replay", image, config, params)


@register_step("merged_replay")
def _step_merged_replay(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    clients = int(params.get("clients", 2))
    if clients < 1:
        raise ValueError("merged_replay needs at least one client")
    kind = params.get("kind", "churn")
    ops = int(params.get("ops", 5_000))
    base_seed = config.seed + int(params.get("seed_offset", 0))
    traces = []
    for index in range(clients):
        if kind == "churn":
            # Per-client name prefixes keep the clients from colliding on
            # freshly created paths while still sharing the image namespace.
            spec = ChurnSpec(num_ops=ops, name_prefix=f"/churn/c{index}/f")
            traces.append(synthesize_churn(spec, seed=base_seed + index))
        else:
            traces.append(synthesize_trace(kind, image, ops, base_seed + index, 64))
    merged = merge_traces(*traces)
    result = TraceReplayer(image).replay(merged)
    metrics = replay_metrics(result)
    metrics["clients"] = clients
    for client, stats in sorted(result.per_client.items()):
        metrics[f"{client}_executed"] = stats.count
        metrics[f"{client}_simulated_ms"] = stats.total_ms
    return metrics


@register_step("age")
def _step_age(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    return run_post_stage("trace_aging", image, config, params)


@register_step("bench")
def _step_bench(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    return run_post_stage("bench", image, config, params)


@register_step("materialize")
def _step_materialize(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    return run_post_stage("materialize", image, config, params)


@register_step("sharded_generate")
def _step_sharded_generate(image: FileSystemImage, config: ImpressionsConfig, params: dict) -> dict:
    """Re-generate the scenario's config in shards and report the merged shape.

    Every metric is a pure function of the plan, so ``jobs`` (a pure
    execution knob) never changes a result row — sweeping it is the
    determinism check.
    """
    from repro.shard import generate_sharded

    result = generate_sharded(
        config=config,
        num_shards=int(params.get("shards", 4)),
        jobs=int(params.get("jobs", 1)),
        digest=bool(params.get("digest", True)),
    )
    merged = result.image
    return {
        "shards": result.plan.num_shards,
        "plan_fingerprint": result.plan.fingerprint(),
        "fingerprint": result.fingerprint,
        "content_digest": result.content_digest or "",
        "files": merged.file_count,
        "directories": merged.directory_count,
        "total_bytes": merged.total_bytes,
        "layout_score": merged.achieved_layout_score(),
    }
