"""``impressions faults`` — inspect fault plans and run chaos sweeps.

::

    impressions faults plan --seed 7 [--json]
    impressions faults sweep --seed 7 [--out DIR] [--points P ...] [--json]

``plan`` prints the deterministic fault schedule a seed expands to (and its
fingerprint), without running anything.  ``sweep`` runs the full chaos
harness — every scheduled fault as its own experiment — and exits non-zero
unless every fault either self-healed to a fingerprint-identical result or
dead-lettered with a captured reason.  With ``--out`` the sweep writes
``report.json`` plus the observability bundle (events, trace, Prometheus
snapshot, summary) for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.faults.harness import run_sweep, save_report
from repro.faults.plan import FAULT_KINDS, INJECTION_POINTS, FaultPlan

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions faults",
        description="Deterministic fault injection: print plans, run chaos sweeps.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_plan_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--seed", type=int, default=0, help="plan seed (default: 0)")
        sub.add_argument(
            "--points",
            nargs="+",
            metavar="POINT",
            default=None,
            choices=sorted(INJECTION_POINTS),
            help="restrict to these injection points (default: all)",
        )
        sub.add_argument(
            "--kinds",
            nargs="+",
            metavar="KIND",
            default=None,
            choices=list(FAULT_KINDS),
            help="restrict to these fault kinds (default: all)",
        )
        sub.add_argument(
            "--faults-per-point",
            type=int,
            default=1,
            metavar="N",
            help="faults scheduled per injection point (default: 1)",
        )
        sub.add_argument("--json", action="store_true", help="machine-readable output")

    plan = commands.add_parser("plan", help="print the schedule a seed expands to")
    add_plan_arguments(plan)

    sweep = commands.add_parser("sweep", help="run every scheduled fault as an experiment")
    add_plan_arguments(sweep)
    sweep.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write report.json and the obs bundle here",
    )
    return parser


def _expand(args: argparse.Namespace) -> FaultPlan:
    return FaultPlan.generate(
        args.seed,
        points=args.points,
        kinds=args.kinds,
        faults_per_point=args.faults_per_point,
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = _expand(args)
    if args.json:
        print(
            json.dumps(
                {"plan": plan.to_dict(), "fingerprint": plan.fingerprint()},
                sort_keys=True,
                indent=2,
            )
        )
        return 0
    print(f"seed {plan.seed}: {len(plan)} fault(s), fingerprint {plan.fingerprint()[:16]}")
    for spec in plan:
        extra = ""
        if spec.kind == "torn_write":
            extra = f" offset={spec.offset}"
        elif spec.kind == "fsync_loss":
            extra = f" lost_bytes={spec.lost_bytes}"
        elif spec.kind == "slow_io":
            extra = f" delay={spec.delay_seconds}s"
        print(f"  {spec.point}: {spec.kind} on occurrence {spec.occurrence}{extra}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    quiet = bool(args.json)
    report = run_sweep(
        args.seed,
        points=args.points,
        kinds=args.kinds,
        faults_per_point=args.faults_per_point,
        log=(None if quiet else print),
    )
    paths: dict[str, str] = {}
    if args.out:
        paths = save_report(report, args.out)
    if args.json:
        document = report.as_dict()
        if paths:
            document["artifacts"] = paths
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        verdicts = ", ".join(
            f"{count} {verdict}" for verdict, count in sorted(report.as_dict()["verdicts"].items())
        )
        status = "PASS" if report.passed else "FAIL"
        print(
            f"{status}: seed {report.seed}, {len(report.outcomes)} fault(s) "
            f"({verdicts or 'none'}), plan {report.plan_fingerprint[:16]} "
            f"{'(deterministic)' if report.deterministic else '(NON-DETERMINISTIC)'}"
        )
        if paths:
            print(f"report: {paths['report']}")
        for outcome in report.outcomes:
            if not outcome.ok:
                print(f"  VIOLATED {outcome.spec.point} {outcome.spec.kind}: {outcome.detail}")
                if outcome.error:
                    print("    " + outcome.error.rstrip().replace("\n", "\n    "))
    return 0 if report.passed else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else sys.argv[1:])
    if args.command == "plan":
        return _cmd_plan(args)
    return _cmd_sweep(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
