"""Deterministic fault injection and crash-consistency primitives.

See :mod:`repro.faults.plan` for the seeded fault schedules and injector,
:mod:`repro.faults.atomic` for checksum-sealed atomic writes and quarantine,
and :mod:`repro.faults.harness` for the chaos sweep behind
``impressions faults sweep``.
"""

from repro.faults.atomic import (
    TRAILER_MAGIC,
    TRAILER_SIZE,
    CorruptionError,
    atomic_write_bytes,
    quarantine_bytes,
    quarantine_dir,
    quarantine_file,
    read_verified,
    seal,
    unseal,
)
from repro.faults.plan import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    active,
    check,
    count_corruption,
    count_heal,
    count_quarantine,
    mangle_write,
    use,
)

__all__ = [
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "TRAILER_MAGIC",
    "TRAILER_SIZE",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "CorruptionError",
    "active",
    "check",
    "mangle_write",
    "use",
    "count_corruption",
    "count_heal",
    "count_quarantine",
    "seal",
    "unseal",
    "atomic_write_bytes",
    "read_verified",
    "quarantine_dir",
    "quarantine_bytes",
    "quarantine_file",
]
