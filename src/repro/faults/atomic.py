"""Crash-consistent file writes with checksum trailers, plus quarantine.

:func:`atomic_write_bytes` is the one write path every durability layer now
shares: payload + 40-byte trailer (magic + raw SHA-256 of the payload) into a
tmp file in the *same directory*, ``fsync``, then ``os.replace``.  A reader
calls :func:`read_verified` and gets either the exact bytes that were written
or :class:`CorruptionError` — never a silent prefix.

The helper doubles as a fault surface: when a :class:`~repro.faults.plan`
injector is bound, the named write point can tear the payload or drop its
tail.  Faithfully tearing the *tmp* file would be invisible (the rename never
happens, the old file survives — that is the whole point of rename
atomicity), so simulated tears are persisted at the **final** path: this
models the post-rename page loss / lying-fsync failure mode that only
read-side verification can catch, which is exactly the detection machinery
the chaos sweep needs to exercise.

:func:`quarantine_file` / :func:`quarantine_bytes` move damaged artifacts
into a ``.quarantine/`` sidecar next to the store they came from, named by
content hash (re-quarantining identical damage is idempotent), with a
``*.reason.json`` record of why.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Mapping

from repro.faults import plan as fault_plan

__all__ = [
    "TRAILER_MAGIC",
    "TRAILER_SIZE",
    "CorruptionError",
    "seal",
    "unseal",
    "atomic_write_bytes",
    "read_verified",
    "quarantine_dir",
    "quarantine_bytes",
    "quarantine_file",
]

#: 8-byte magic opening every checksum trailer.  ``IMPRCHK1`` — version 1.
TRAILER_MAGIC = b"IMPRCHK1"

#: Trailer layout: magic + raw SHA-256 digest of the payload.
TRAILER_SIZE = len(TRAILER_MAGIC) + hashlib.sha256().digest_size


class CorruptionError(RuntimeError):
    """A sealed file failed verification on read.

    Attributes:
        path: the offending file.
        reason: short machine-readable cause (``missing_trailer``,
            ``checksum_mismatch``, ``truncated``).
    """

    def __init__(self, path: str, reason: str, detail: str = "") -> None:
        super().__init__(f"{path}: {reason}" + (f" ({detail})" if detail else ""))
        self.path = path
        self.reason = reason


def seal(payload: bytes) -> bytes:
    """Append the checksum trailer to ``payload``."""
    return payload + TRAILER_MAGIC + hashlib.sha256(payload).digest()


def unseal(blob: bytes, *, path: str = "<memory>") -> bytes:
    """Strip and verify the trailer; raise :class:`CorruptionError` if bad."""
    if len(blob) < TRAILER_SIZE:
        raise CorruptionError(path, "truncated", f"{len(blob)} bytes < trailer size")
    payload, trailer = blob[:-TRAILER_SIZE], blob[-TRAILER_SIZE:]
    if trailer[: len(TRAILER_MAGIC)] != TRAILER_MAGIC:
        raise CorruptionError(path, "missing_trailer")
    if trailer[len(TRAILER_MAGIC) :] != hashlib.sha256(payload).digest():
        raise CorruptionError(path, "checksum_mismatch")
    return payload


def atomic_write_bytes(
    path: str,
    payload: bytes,
    *,
    fault_point: str | None = None,
    fsync: bool = True,
) -> None:
    """Write ``seal(payload)`` to ``path`` atomically (tmp + fsync + rename).

    With an injector bound and ``fault_point`` given, the scheduled fault for
    that point is applied: error kinds raise before anything persists (and
    the tmp file is removed), torn/fsync-loss kinds persist a mangled blob at
    the final path — torn writes then raise :class:`InjectedCrash`.
    """
    blob = seal(payload)
    crash_after = False
    if fault_point is not None:
        blob, crash_after = fault_plan.mangle_write(fault_point, blob)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except FileNotFoundError:
            pass
        raise
    if crash_after:
        raise fault_plan.InjectedCrash(fault_point or "atomic_write", "torn write persisted")


def read_verified(path: str, *, fault_point: str | None = None) -> bytes:
    """Read a sealed file back; raise :class:`CorruptionError` on damage.

    Propagates ``FileNotFoundError`` untouched — a miss is not corruption.
    """
    if fault_point is not None:
        fault_plan.check(fault_point)
    with open(path, "rb") as handle:
        blob = handle.read()
    return unseal(blob, path=path)


# Quarantine -------------------------------------------------------------------


def quarantine_dir(store_root: str) -> str:
    """The ``.quarantine/`` sidecar for a store rooted at ``store_root``.

    For a file-backed store (e.g. a JSONL file) pass the file path; the
    sidecar lands next to it.
    """
    if os.path.isdir(store_root):
        return os.path.join(store_root, ".quarantine")
    return os.path.join(os.path.dirname(store_root) or ".", ".quarantine")


def quarantine_bytes(
    store_root: str,
    data: bytes,
    *,
    layer: str,
    reason: str,
    detail: Mapping | None = None,
) -> str:
    """Preserve corrupt ``data`` in the sidecar; return the quarantined path.

    Files are named by content hash so identical damage quarantines once;
    a ``<name>.reason.json`` record alongside captures the why.
    """
    root = quarantine_dir(store_root)
    os.makedirs(root, exist_ok=True)
    digest = hashlib.sha256(data).hexdigest()[:16]
    name = f"{layer}-{digest}.bin"
    target = os.path.join(root, name)
    if not os.path.exists(target):
        with open(target, "wb") as handle:
            handle.write(data)
    record = {
        "layer": layer,
        "reason": reason,
        "size_bytes": len(data),
        "sha256_16": digest,
        "quarantined_at": time.time(),
    }
    if detail:
        record["detail"] = dict(detail)
    with open(os.path.join(root, f"{name}.reason.json"), "w", encoding="utf-8") as handle:
        json.dump(record, handle, sort_keys=True, indent=2)
        handle.write("\n")
    fault_plan.count_quarantine(layer)
    return target


def quarantine_file(
    store_root: str,
    path: str,
    *,
    layer: str,
    reason: str,
    detail: Mapping | None = None,
) -> str | None:
    """Move the file at ``path`` into quarantine; None if already gone."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return None
    target = quarantine_bytes(store_root, data, layer=layer, reason=reason, detail=detail)
    try:
        os.remove(path)
    except FileNotFoundError:
        pass
    return target
