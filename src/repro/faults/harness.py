"""The chaos harness behind ``impressions faults sweep``.

A sweep takes a seed, derives a :class:`~repro.faults.plan.FaultPlan` from it
(bit-for-bit reproducibly — the report records the plan fingerprint twice,
generated independently, to prove it), and then runs every scheduled fault as
its own single-fault experiment in a fresh workspace.  Each injection point
maps to the *flow* that exercises it end to end:

========================  =====================================================
point                     flow
========================  =====================================================
``cache.entry.write``     generate a scenario against a stage cache, fault the
``cache.entry.read``      entry write/read, restart on crash, re-run warm
``store.append``          append result rows, crash mid-append, recover by
                          fingerprint and re-read
``queue.lease``           submit a tiny campaign to a real :class:`JobQueue`
``queue.ack``             and drain it with a real worker, restarting the
``worker.after_lease``    worker whenever the fault "kills" it
``sink.add_file``         materialize a tiny image through a tar sink; verify
``sink.finalize``         failed runs abort clean and recovery runs digest-
                          identical
``client.request``        call a live in-process control plane through the
                          retrying HTTP client
========================  =====================================================

Every experiment ends in a **verdict**:

* ``healed`` — the flow recovered on its own and its recovered output is
  fingerprint-identical to the fault-free baseline;
* ``dead_letter`` — the fault was correctly surfaced as a parked job with a
  captured reason (farm flow only — nothing silently lost).

Anything else (a corrupt row surfacing, a digest mismatch, a partial
artifact surviving an abort) is an invariant violation: the outcome verdict
becomes ``violated`` and the sweep fails.  The sweep runs under one
:class:`repro.obs.Telemetry`, so the report carries the
``faults_injected_total`` / ``corruption_detected_total`` /
``quarantine_total`` / ``heal_total`` counters for the whole run.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
import threading
import traceback
from dataclasses import dataclass, field

from repro.faults.plan import FaultInjector, FaultPlan, FaultSpec, InjectedCrash, use
from repro.obs import core as obs_core

__all__ = ["SWEEP_FORMAT_VERSION", "FaultOutcome", "SweepReport", "run_sweep", "flow_for_point"]

SWEEP_FORMAT_VERSION = 1

#: Scenario every flow runs — tiny on purpose (a sweep runs it dozens of
#: times) but through the full production path: pipeline, stage cache,
#: campaign steps, queue, worker, sinks.
SPEC_DOC = {
    "name": "chaos",
    "base": {"num_directories": 6, "fs_size_bytes": 8 * 1024 * 1024, "seed": 17},
    "sweep": {"num_files": [30]},
    "steps": [{"step": "summary"}],
}

#: How many times a flow restarts after an injected crash before giving up.
MAX_RESTARTS = 3

_POINT_FLOWS = {
    "cache.entry.write": "cache",
    "cache.entry.read": "cache",
    "store.append": "store",
    "queue.lease": "farm",
    "queue.ack": "farm",
    "worker.after_lease": "farm",
    "sink.add_file": "sink",
    "sink.finalize": "sink",
    "client.request": "client",
}


def flow_for_point(point: str) -> str:
    """Which end-to-end flow exercises an injection point."""
    return _POINT_FLOWS[point]


@dataclass
class FaultOutcome:
    """The verdict of one single-fault experiment."""

    spec: FaultSpec
    flow: str
    verdict: str  # healed | dead_letter | violated
    detail: str = ""
    restarts: int = 0
    fired: bool = True
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict in ("healed", "dead_letter")

    def as_dict(self) -> dict:
        return {
            **self.spec.as_dict(),
            "flow": self.flow,
            "verdict": self.verdict,
            "detail": self.detail,
            "restarts": self.restarts,
            "fired": self.fired,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Everything one seeded sweep did, JSON-serializable for CI artifacts."""

    seed: int
    plan_fingerprint: str
    regenerated_fingerprint: str
    outcomes: list[FaultOutcome] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def deterministic(self) -> bool:
        return self.plan_fingerprint == self.regenerated_fingerprint

    @property
    def passed(self) -> bool:
        return self.deterministic and all(outcome.ok for outcome in self.outcomes)

    def as_dict(self) -> dict:
        verdicts: dict[str, int] = {}
        for outcome in self.outcomes:
            verdicts[outcome.verdict] = verdicts.get(outcome.verdict, 0) + 1
        return {
            "format": SWEEP_FORMAT_VERSION,
            "seed": self.seed,
            "passed": self.passed,
            "plan_fingerprint": self.plan_fingerprint,
            "regenerated_fingerprint": self.regenerated_fingerprint,
            "deterministic": self.deterministic,
            "faults": len(self.outcomes),
            "verdicts": verdicts,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "counters": self.counters,
        }


# Shared fixtures --------------------------------------------------------------


def _scenario_payload() -> dict:
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec.from_dict(SPEC_DOC)
    return spec.expand()[0].payload()


def _row_digest(row: dict) -> str:
    """Canonical digest of a result row's deterministic view."""
    import hashlib

    from repro.campaign.store import deterministic_view

    canonical = json.dumps(deterministic_view(row), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _Baselines:
    """Fault-free reference outputs, computed once per sweep, on demand."""

    def __init__(self) -> None:
        self._cache: dict[str, object] = {}

    def scenario_digest(self) -> str:
        if "scenario" not in self._cache:
            from repro.campaign.runner import run_scenario

            self._cache["scenario"] = _row_digest(run_scenario(_scenario_payload()))
        return self._cache["scenario"]  # type: ignore[return-value]

    def image(self):
        if "image" not in self._cache:
            from repro.core.config import ImpressionsConfig
            from repro.pipeline.runner import default_pipeline

            knobs = _scenario_payload()["knobs"]
            config = ImpressionsConfig.from_knobs(knobs)
            self._cache["image"] = default_pipeline().run(config).image
        return self._cache["image"]

    def sink_digest(self) -> str:
        if "sink" not in self._cache:
            from repro.materialize import TarSink, materialize_image

            with tempfile.TemporaryDirectory(prefix="faults-baseline-") as tmp:
                result = materialize_image(
                    self.image(), TarSink(os.path.join(tmp, "image.tar"))
                )
            self._cache["sink"] = result.content_digest
        return self._cache["sink"]  # type: ignore[return-value]


def _store_rows() -> list[dict]:
    """Three deterministic rows the store flow appends."""
    return [
        {"fingerprint": f"fp-{index:02d}", "scenario": f"s{index}", "metrics": {"n": index}}
        for index in range(3)
    ]


# Flows ------------------------------------------------------------------------


def _run_cache_flow(
    injector: FaultInjector, workspace: str, baselines: _Baselines
) -> tuple[str, str, int]:
    """Generate through a faulted stage cache; heal by restart + regeneration."""
    from repro.campaign.runner import run_scenario

    payload = _scenario_payload()
    payload["cache_dir"] = os.path.join(workspace, "stage-cache")
    restarts = 0
    row = None
    for _ in range(MAX_RESTARTS + 1):
        try:
            row = run_scenario(dict(payload))
            break
        except InjectedCrash:
            restarts += 1  # "restart the process" and try again
    if row is None:
        return "violated", "never survived its restarts", restarts
    if _row_digest(row) != baselines.scenario_digest():
        return "violated", "recovered row differs from fault-free baseline", restarts
    # Warm re-run: read-side detection must either hit clean entries or
    # quarantine damage and regenerate — never surface a wrong restore.
    warm = run_scenario(dict(payload))
    if _row_digest(warm) != baselines.scenario_digest():
        return "violated", "warm cache re-run differs from baseline", restarts
    return "healed", "row and warm re-run digest-identical to baseline", restarts


def _run_store_flow(injector: FaultInjector, workspace: str, baselines: _Baselines) -> tuple[str, str, int]:
    """Append rows through a faulted store; recover by fingerprint re-append."""
    from repro.campaign.store import ResultStore, deterministic_view

    rows = _store_rows()
    store = ResultStore(os.path.join(workspace, "results.jsonl"))
    restarts = 0
    for row in rows:
        for _ in range(MAX_RESTARTS + 1):
            try:
                if row["fingerprint"] not in store.fingerprints():
                    store.append(row)
                break
            except InjectedCrash:
                restarts += 1  # crashed mid-append; the torn tail persists
            except OSError:
                restarts += 1  # ENOSPC/EIO: nothing persisted, retry
    # Reconcile by fingerprint: a lying fsync (``fsync_loss``) reports
    # success while dropping the tail, so the append loop alone cannot see
    # the loss — exactly the recovery a resumed campaign performs.
    persisted = store.fingerprints()
    for row in rows:
        if row["fingerprint"] not in persisted:
            restarts += 1
            store.append(row)
    # A reconciled row re-appends at the tail, so compare as sets: every
    # appended row present exactly once, nothing corrupt surfaced.
    def canon(view: dict) -> str:
        return json.dumps(view, sort_keys=True, separators=(",", ":"))

    recovered = sorted(canon(deterministic_view(row)) for row in store.rows())
    expected = sorted(canon(deterministic_view(row)) for row in rows)
    if recovered != expected:
        return "violated", f"recovered rows {recovered!r} != appended rows", restarts
    return "healed", "all rows recovered exactly; damage quarantined", restarts


def _run_sink_flow(injector: FaultInjector, workspace: str, baselines: _Baselines) -> tuple[str, str, int]:
    """Materialize through a faulted sink; failed runs must abort clean."""
    from repro.materialize import SinkWriteError, TarSink, materialize_image

    image = baselines.image()
    archive = os.path.join(workspace, "image.tar")
    restarts = 0
    result = None
    for _ in range(MAX_RESTARTS + 1):
        try:
            result = materialize_image(image, TarSink(archive))
            break
        except SinkWriteError:
            restarts += 1
            if os.path.exists(archive):
                return "violated", "partial artifact survived a sink abort", restarts
        except InjectedCrash:
            restarts += 1
            # A crash aborts nothing; a fresh run must still converge.
            with contextlib.suppress(OSError):
                os.remove(archive)
    if result is None:
        return "violated", "materialization never recovered", restarts
    if result.content_digest != baselines.sink_digest():
        return "violated", "recovered archive digest differs from baseline", restarts
    return "healed", "aborts left no partial artifact; recovery digest-identical", restarts


def _run_farm_flow(injector: FaultInjector, workspace: str, baselines: _Baselines) -> tuple[str, str, int]:
    """Drain a real queue with a real worker, restarting it on every crash."""
    from repro.service.api import FarmService
    from repro.service.queue import DEAD, JobQueue
    from repro.service.worker import WorkerOptions, run_worker

    queue_path = os.path.join(workspace, "queue.sqlite")
    store_path = os.path.join(workspace, "results.jsonl")
    queue = JobQueue(queue_path)
    try:
        service = FarmService(queue, store_path)
        submitted = service.submit({"spec": SPEC_DOC, "max_attempts": 2})
        campaign_id = submitted["campaign"]
        options = WorkerOptions(
            queue_path=queue_path,
            store_path=store_path,
            worker_id="chaos-worker",
            lease_ttl=1.0,
            poll_interval=0.05,
            cache_dir=os.path.join(workspace, "stage-cache"),
            drain=True,
            queue_retry_backoff=0.05,
        )
        restarts = 0
        for _ in range(MAX_RESTARTS + 1):
            try:
                run_worker(options, queue=queue)
                break
            except InjectedCrash:
                restarts += 1  # the worker "died"; a fresh one takes over
        info = queue.campaign(campaign_id)
        dead = queue.jobs(state=DEAD, campaign_id=campaign_id)
        if dead:
            reasons = [job.error for job in dead]
            if not all(reasons):
                return "violated", "dead-lettered job without a captured reason", restarts
            return "dead_letter", f"{len(dead)} job(s) parked with reasons", restarts
        if info["state"] != "complete":
            return "violated", f"campaign ended {info['state']!r} with no dead letters", restarts
        from repro.campaign.store import ResultStore

        digests = sorted(_row_digest(row) for row in ResultStore(store_path).rows())
        if baselines.scenario_digest() not in digests:
            return "violated", "farm row differs from fault-free baseline", restarts
        return "healed", "campaign completed; rows digest-identical to baseline", restarts
    finally:
        queue.close()


def _run_client_flow(injector: FaultInjector, workspace: str, baselines: _Baselines) -> tuple[str, str, int]:
    """Exercise the retrying HTTP client against a live control plane."""
    from repro.service.api import FarmService, make_server
    from repro.service.cli import HttpClient
    from repro.service.queue import JobQueue

    queue = JobQueue(os.path.join(workspace, "queue.sqlite"))
    server = make_server(FarmService(queue, os.path.join(workspace, "results.jsonl")), "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        host, port = server.server_address[:2]
        client = HttpClient(f"http://{host}:{port}", timeout=10.0, retries=4)
        restarts = 0
        stats = None
        # Two requests so occurrence-2 schedules reach their arrival too.
        for call in (client.campaigns, client.stats):
            for _ in range(MAX_RESTARTS + 1):
                try:
                    stats = call()
                    break
                except InjectedCrash:
                    restarts += 1  # the client "died"; re-requesting is safe
        if not isinstance(stats, dict) or "jobs" not in stats:
            return "violated", "client never recovered a stats response", restarts
        return "healed", "request retried/resubmitted to success", restarts
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        queue.close()


_FLOWS = {
    "cache": _run_cache_flow,
    "store": _run_store_flow,
    "sink": _run_sink_flow,
    "farm": _run_farm_flow,
    "client": _run_client_flow,
}


# The sweep --------------------------------------------------------------------


def run_one_fault(
    spec: FaultSpec, baselines: _Baselines | None = None, workspace: str | None = None
) -> FaultOutcome:
    """One single-fault experiment in a fresh workspace."""
    flow = flow_for_point(spec.point)
    baselines = baselines if baselines is not None else _Baselines()
    owns_workspace = workspace is None
    if owns_workspace:
        workspace = tempfile.mkdtemp(prefix=f"faults-{flow}-")
    try:
        injector = FaultInjector(FaultPlan(specs=(spec,), seed=None))
        with use(injector):
            try:
                verdict, detail, restarts = _FLOWS[flow](injector, workspace, baselines)
            # detlint: ignore[broad-except] terminal verdict capture: any leak is the "violated" verdict
            except Exception:
                return FaultOutcome(
                    spec=spec,
                    flow=flow,
                    verdict="violated",
                    detail="flow raised instead of healing or dead-lettering",
                    error=traceback.format_exc(),
                )
        return FaultOutcome(
            spec=spec,
            flow=flow,
            verdict=verdict,
            detail=detail,
            restarts=restarts,
            fired=bool(injector.fired),
        )
    finally:
        if owns_workspace:
            shutil.rmtree(workspace, ignore_errors=True)


def run_sweep(
    seed: int,
    *,
    points: list[str] | None = None,
    kinds: list[str] | None = None,
    faults_per_point: int = 1,
    max_occurrence: int = 2,
    log=None,
) -> SweepReport:
    """Run the full seeded sweep and return its report.

    ``log`` (optional callable) receives one line per experiment as it
    completes, for CLI progress.
    """
    plan = FaultPlan.generate(
        seed,
        points=points,
        kinds=kinds,
        faults_per_point=faults_per_point,
        max_occurrence=max_occurrence,
    )
    regenerated = FaultPlan.generate(
        seed,
        points=points,
        kinds=kinds,
        faults_per_point=faults_per_point,
        max_occurrence=max_occurrence,
    )
    telemetry = obs_core.Telemetry(run_id=f"faults-sweep-{seed}")
    report = SweepReport(
        seed=seed,
        plan_fingerprint=plan.fingerprint(),
        regenerated_fingerprint=regenerated.fingerprint(),
    )
    with obs_core.use(telemetry):
        baselines = _Baselines()
        for spec in plan:
            outcome = run_one_fault(spec, baselines)
            report.outcomes.append(outcome)
            if log is not None:
                log(
                    f"[{outcome.verdict:>11}] {spec.point} {spec.kind} "
                    f"(occurrence {spec.occurrence}): {outcome.detail}"
                )
    report.counters = {
        "faults_injected_total": _counter_total(telemetry, "faults_injected_total"),
        "corruption_detected_total": _counter_total(telemetry, "corruption_detected_total"),
        "quarantine_total": _counter_total(telemetry, "quarantine_total"),
        "heal_total": _counter_total(telemetry, "heal_total"),
    }
    report._telemetry = telemetry  # type: ignore[attr-defined]  # for obs export
    return report


def _counter_total(telemetry: "obs_core.Telemetry", name: str) -> float:
    for metric in telemetry.metrics():
        if metric.name == name and metric.kind == "counter":
            return metric.total()
    return 0.0


def save_report(report: SweepReport, out_dir: str) -> dict[str, str]:
    """Write ``report.json`` (+ obs exports when available); return the paths."""
    os.makedirs(out_dir, exist_ok=True)
    report_path = os.path.join(out_dir, "report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, sort_keys=True, indent=2)
        handle.write("\n")
    paths = {"report": report_path}
    telemetry = getattr(report, "_telemetry", None)
    if telemetry is not None:
        from repro import obs

        paths.update(obs.save(telemetry, os.path.join(out_dir, "obs")))
    return paths
