"""Deterministic, seeded fault injection: plans, the injector, named points.

A :class:`FaultPlan` is a *schedule* of faults — each :class:`FaultSpec` says
"the Nth time execution reaches injection point P, inject fault kind K with
these parameters".  Plans are pure data: built explicitly, or derived from a
seed with :meth:`FaultPlan.generate` (the same seed always yields the same
schedule, bit-for-bit — :meth:`FaultPlan.fingerprint` pins that), and they
round-trip through JSON so a chaos sweep's report can name exactly what it
injected.

A plan does nothing until *bound*: ``with use(plan) as injector: ...`` arms a
:class:`FaultInjector` on a contextvar, and the injection points threaded
through the durability layers (:data:`INJECTION_POINTS`) consult it via
:func:`check` (control points — may raise or sleep) and :func:`mangle_write`
(write points — may tear or silently truncate the payload).  When nothing is
bound every point is a single ``is None`` check, so production runs pay
effectively nothing.

Fault kinds and their simulated semantics:

``torn_write``
    The write persists only the first ``offset`` bytes (modulo the payload
    length) of what was asked, then :class:`InjectedCrash` is raised — the
    process "died" mid-write.  The partial bytes *are* durable: this is the
    crash the checksum trailers and torn-tail recovery exist for.
``fsync_loss``
    The write drops its final ``lost_bytes`` bytes but *reports success* —
    the lying-fsync case where the rename happened but the tail data pages
    never hit the platter.  Only read-side verification can catch it.
``enospc`` / ``eio``
    ``OSError(ENOSPC)`` / ``OSError(EIO)`` raised at the point before
    anything persists; the layer must surface a typed error and leave no
    partial artifact behind.
``slow_io``
    ``time.sleep(delay_seconds)`` at the point — exercises lease-expiry and
    backoff paths without real contention.
``crash``
    :class:`InjectedCrash` raised at the point with nothing written — the
    process "died" between operations.

Every fired fault is counted on the bound telemetry as
``faults_injected_total{point,kind}``; the sibling counters
(``corruption_detected_total``, ``quarantine_total``, ``heal_total``) are
recorded by the hardened layers through the helpers at the bottom.
"""

from __future__ import annotations

import contextlib
import contextvars
import errno
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

__all__ = [
    "FAULT_KINDS",
    "WRITE_KINDS",
    "INJECTION_POINTS",
    "FaultError",
    "InjectedCrash",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "use",
    "active",
    "check",
    "mangle_write",
    "count_corruption",
    "count_quarantine",
    "count_heal",
]

TORN_WRITE = "torn_write"
FSYNC_LOSS = "fsync_loss"
ENOSPC = "enospc"
EIO = "eio"
SLOW_IO = "slow_io"
CRASH = "crash"

#: Every fault kind a plan may schedule.
FAULT_KINDS = (TORN_WRITE, FSYNC_LOSS, ENOSPC, EIO, SLOW_IO, CRASH)

#: Kinds that only make sense at a *write* point (they mangle a payload).
WRITE_KINDS = (TORN_WRITE, FSYNC_LOSS)

#: The named injection points threaded through the durability layers, mapped
#: to their flavour: ``write`` points pass a payload through
#: :func:`mangle_write`; ``control`` points call :func:`check`.  The chaos
#: harness derives its schedules from this registry, so adding a point here
#: automatically puts it in sweep scope.
INJECTION_POINTS: dict[str, str] = {
    "cache.entry.write": "write",
    "cache.entry.read": "control",
    "store.append": "write",
    "queue.lease": "control",
    "queue.ack": "control",
    "worker.after_lease": "control",
    "sink.add_file": "control",
    "sink.finalize": "control",
    "client.request": "control",
}


class FaultError(ValueError):
    """Raised on invalid plans (unknown points/kinds, bad parameters)."""


class InjectedCrash(BaseException):
    """A simulated process death at an injection point.

    Derives from :class:`BaseException` on purpose: ordinary ``except
    Exception`` error handling must *not* swallow it — a crashed process
    does not run its error handlers.  Only a chaos harness (or a test)
    standing in for "the operator restarts the process" may catch it.
    """

    def __init__(self, point: str, detail: str = "") -> None:
        super().__init__(f"injected crash at {point!r}" + (f": {detail}" if detail else ""))
        self.point = point


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: the Nth arrival at ``point`` injects ``kind``.

    Attributes:
        point: injection-point name (see :data:`INJECTION_POINTS`).
        kind: one of :data:`FAULT_KINDS`.
        occurrence: 1-based arrival index at the point that triggers the
            fault; each spec fires at most once.
        offset: ``torn_write`` — persist only the first ``offset % len``
            bytes of the payload.
        lost_bytes: ``fsync_loss`` — silently drop this many tail bytes
            (clamped to leave at least zero bytes).
        delay_seconds: ``slow_io`` — how long the point sleeps.
    """

    point: str
    kind: str
    occurrence: int = 1
    offset: int = 0
    lost_bytes: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise FaultError(
                f"unknown injection point {self.point!r}; known: {sorted(INJECTION_POINTS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.kind in WRITE_KINDS and INJECTION_POINTS[self.point] != "write":
            raise FaultError(
                f"{self.kind} needs a write point; {self.point!r} is a control point"
            )
        if self.occurrence < 1:
            raise FaultError("occurrence is 1-based and must be >= 1")
        if self.lost_bytes < 0 or self.offset < 0 or self.delay_seconds < 0:
            raise FaultError("offset, lost_bytes and delay_seconds must be non-negative")

    def as_dict(self) -> dict:
        return {
            "point": self.point,
            "kind": self.kind,
            "occurrence": self.occurrence,
            "offset": self.offset,
            "lost_bytes": self.lost_bytes,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        return cls(
            point=str(data["point"]),
            kind=str(data["kind"]),
            occurrence=int(data.get("occurrence", 1)),
            offset=int(data.get("offset", 0)),
            lost_bytes=int(data.get("lost_bytes", 1)),
            delay_seconds=float(data.get("delay_seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, fingerprinted schedule of faults."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        seed = data.get("seed")
        return cls(
            specs=tuple(FaultSpec.from_dict(entry) for entry in data.get("specs", [])),
            seed=(None if seed is None else int(seed)),
        )

    def fingerprint(self) -> str:
        """SHA-256 of the canonical plan JSON — same seed, same digest."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        points: Sequence[str] | None = None,
        kinds: Sequence[str] | None = None,
        faults_per_point: int = 1,
        max_occurrence: int = 2,
    ) -> "FaultPlan":
        """Derive a schedule from ``seed`` — deterministically.

        For every point (sorted, so iteration order cannot drift) the seeded
        generator draws ``faults_per_point`` faults among the kinds legal at
        that point, with occurrence indices in ``[1, max_occurrence]`` and
        kind-specific parameters.  Two calls with equal arguments produce
        bit-identical plans; the chaos sweep pins this via
        :meth:`fingerprint`.
        """
        if faults_per_point < 1:
            raise FaultError("faults_per_point must be >= 1")
        chosen_points = sorted(points) if points is not None else sorted(INJECTION_POINTS)
        for point in chosen_points:
            if point not in INJECTION_POINTS:
                raise FaultError(f"unknown injection point {point!r}")
        allowed = tuple(kinds) if kinds is not None else FAULT_KINDS
        for kind in allowed:
            if kind not in FAULT_KINDS:
                raise FaultError(f"unknown fault kind {kind!r}")
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for point in chosen_points:
            legal = [
                kind
                for kind in allowed
                if kind not in WRITE_KINDS or INJECTION_POINTS[point] == "write"
            ]
            if not legal:
                continue
            for _ in range(faults_per_point):
                kind = rng.choice(legal)
                specs.append(
                    FaultSpec(
                        point=point,
                        kind=kind,
                        occurrence=rng.randint(1, max_occurrence),
                        offset=rng.randint(0, 4096),
                        lost_bytes=rng.randint(1, 64),
                        delay_seconds=round(rng.uniform(0.01, 0.05), 4),
                    )
                )
        return cls(specs=tuple(specs), seed=seed)


@dataclass
class _FiredFault:
    """One fault the injector actually fired (for the sweep report)."""

    spec: FaultSpec
    hit: int

    def as_dict(self) -> dict:
        return {**self.spec.as_dict(), "hit": self.hit}


class FaultInjector:
    """The mutable runtime of one bound plan: hit counters and fired faults.

    One injector accompanies one experiment; binding the same *plan* twice
    with fresh injectors replays the identical schedule (hit counters start
    at zero each time).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.hits: dict[str, int] = {}
        self.fired: list[_FiredFault] = []
        self._pending: dict[str, list[FaultSpec]] = {}
        for spec in plan:
            self._pending.setdefault(spec.point, []).append(spec)

    def _due(self, point: str) -> FaultSpec | None:
        """Advance the point's hit counter; return the spec due now, if any."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        queue = self._pending.get(point)
        if not queue:
            return None
        for index, spec in enumerate(queue):
            if spec.occurrence == hit:
                del queue[index]
                self.fired.append(_FiredFault(spec=spec, hit=hit))
                _count_injected(point, spec.kind)
                return spec
        return None

    def check(self, point: str) -> None:
        """A control point: raise, sleep, or pass according to the schedule."""
        spec = self._due(point)
        if spec is None:
            return
        if spec.kind == ENOSPC:
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {point}")
        if spec.kind == EIO:
            raise OSError(errno.EIO, f"injected EIO at {point}")
        if spec.kind == SLOW_IO:
            time.sleep(spec.delay_seconds)
            return
        if spec.kind == CRASH:
            raise InjectedCrash(point)
        raise FaultError(f"{spec.kind} scheduled at control point {point!r}")

    def mangle(self, point: str, data: bytes) -> tuple[bytes, bool]:
        """A write point: return ``(payload to persist, crash_after)``.

        ``torn_write`` truncates and asks the caller to raise
        :class:`InjectedCrash` *after* persisting the partial bytes;
        ``fsync_loss`` truncates silently (the write reports success).
        The error kinds raise exactly as at a control point.
        """
        spec = self._due(point)
        if spec is None:
            return data, False
        if spec.kind == TORN_WRITE:
            keep = spec.offset % len(data) if data else 0
            return data[:keep], True
        if spec.kind == FSYNC_LOSS:
            keep = max(0, len(data) - spec.lost_bytes)
            return data[:keep], False
        if spec.kind == ENOSPC:
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {point}")
        if spec.kind == EIO:
            raise OSError(errno.EIO, f"injected EIO at {point}")
        if spec.kind == SLOW_IO:
            time.sleep(spec.delay_seconds)
            return data, False
        raise InjectedCrash(point)

    def remaining(self) -> list[FaultSpec]:
        """Scheduled faults whose point/occurrence was never reached."""
        return [spec for queue in self._pending.values() for spec in queue]


# Contextvar binding -----------------------------------------------------------

_CURRENT: contextvars.ContextVar[FaultInjector | None] = contextvars.ContextVar(
    "impressions_fault_injector", default=None
)


def active() -> FaultInjector | None:
    """The injector bound on this call path, or None (injection off)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use(plan: "FaultPlan | FaultInjector | None") -> Iterator[FaultInjector | None]:
    """Bind ``plan`` (wrapped in a fresh injector) for the with-block."""
    injector = plan if isinstance(plan, (FaultInjector, type(None))) else FaultInjector(plan)
    token = _CURRENT.set(injector)
    try:
        yield injector
    finally:
        _CURRENT.reset(token)


def check(point: str) -> None:
    """Module-level control point: no-op unless an injector is bound."""
    injector = _CURRENT.get()
    if injector is not None:
        injector.check(point)


def mangle_write(point: str, data: bytes) -> tuple[bytes, bool]:
    """Module-level write point: ``(payload, crash_after)``; no-op unbound."""
    injector = _CURRENT.get()
    if injector is None:
        return data, False
    return injector.mangle(point, data)


# Robustness counters ----------------------------------------------------------
#
# One helper per counter so every layer registers identical (name, labels)
# families on whatever telemetry is bound — mixed registrations would raise.


def _count(name: str, help_text: str, labels: Mapping[str, str], amount: float = 1.0) -> None:
    from repro.obs import core as obs_core

    telemetry = obs_core.current()
    if telemetry is None:
        return
    telemetry.counter(name, help_text, tuple(sorted(labels))).inc(amount, **labels)


def _count_injected(point: str, kind: str) -> None:
    _count(
        "faults_injected_total",
        "faults fired by the bound fault injector",
        {"point": point, "kind": kind},
    )


def count_corruption(layer: str) -> None:
    """Record a corruption *detected* (checksum mismatch, torn row, bad pickle)."""
    _count(
        "corruption_detected_total",
        "corrupt durable state detected on read",
        {"layer": layer},
    )


def count_quarantine(layer: str) -> None:
    """Record one artifact moved into a ``.quarantine/`` sidecar."""
    _count(
        "quarantine_total",
        "corrupt artifacts quarantined for inspection",
        {"layer": layer},
    )


def count_heal(layer: str, action: str) -> None:
    """Record one self-heal (regeneration, tail truncation, lease reclaim...)."""
    _count(
        "heal_total",
        "self-heal actions taken after detecting damage",
        {"layer": layer, "action": action},
    )
