"""The farm's HTTP control plane: a stdlib JSON API over the job queue.

Endpoints (all JSON unless noted)::

    POST /campaigns        submit a campaign spec; returns the campaign id,
                           enqueued/deduped/already-done counts
    GET  /campaigns        list campaigns with progress
    GET  /campaigns/{id}   one campaign's progress, rate and ETA
    GET  /jobs/{id}        one job: state, attempts, lease, error, result
    GET  /queue/stats      queue depths, counters, worker heartbeats
    GET  /metrics          Prometheus text exposition (reuses repro.obs.export)
    GET  /healthz          {"ok": true}
    POST /drain            stop accepting submissions (503 on POST /campaigns)

The server is a :class:`ThreadingHTTPServer`; every request handler shares
one :class:`~repro.service.queue.JobQueue` (thread-safe — a lock around one
sqlite connection), so the API can run in the same process as the queue's
owner or standalone against the database file.

``POST /campaigns`` accepts either a bare campaign-spec document or an
envelope ``{"spec": {...}, "max_attempts": N, "store": "path"}``.  The
response's ``deduped`` count is the concurrency story: two clients racing to
submit the same sweep each get their own campaign id, but every scenario
fingerprint is enqueued exactly once — the loser's campaign simply tracks
the winner's jobs.

``GET /metrics`` renders the queue's state as a Prometheus snapshot through
:func:`repro.obs.export.prometheus_text`: queue depth per state, lease
reclaims, retries, dead letters, campaign count, live workers, and a
histogram over recent per-job durations.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from repro.campaign.spec import SpecError
from repro.campaign.store import ResultStore
from repro.obs.core import Telemetry
from repro.obs.export import prometheus_text
from repro.service.queue import STATES, JobQueue, QueueError

__all__ = ["metrics_telemetry", "FarmService", "make_server", "serve_forever"]

#: Buckets for the /metrics per-job duration histogram (seconds).
DURATION_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0)


def metrics_telemetry(queue: JobQueue) -> Telemetry:
    """A one-shot telemetry snapshot of the queue, for Prometheus export."""
    stats = queue.stats()
    tele = Telemetry(run_id="service-metrics")
    depth = tele.gauge(
        "service_queue_jobs", "jobs currently in each queue state", ("state",)
    )
    for state in STATES:
        depth.set(stats["jobs"][state], state=state)
    tele.gauge("service_queue_depth", "pending plus leased jobs").set(stats["depth"])
    counters = stats["counters"]
    tele.counter(
        "service_lease_reclaims_total", "expired leases returned to the queue"
    ).inc(counters.get("lease_reclaims", 0.0))
    tele.counter("service_job_retries_total", "failed attempts re-enqueued").inc(
        counters.get("job_retries", 0.0)
    )
    tele.counter("service_jobs_dead_total", "jobs parked in the dead-letter state").inc(
        counters.get("jobs_dead", 0.0)
    )
    tele.counter("service_jobs_done_total", "jobs acked complete").inc(
        counters.get("jobs_done", 0.0)
    )
    tele.counter("service_jobs_leased_total", "lease grants").inc(
        counters.get("jobs_leased", 0.0)
    )
    tele.gauge("service_campaigns", "campaigns submitted").set(stats["campaigns"])
    tele.gauge("service_workers_alive", "workers heartbeating in the last minute").set(
        len(stats["workers"])
    )
    durations = tele.histogram(
        "service_job_duration_seconds",
        "wall-clock seconds per completed job",
        buckets=DURATION_BUCKETS,
        unit="seconds",
    )
    for value in queue.durations():
        durations.observe(value)
    return tele


class FarmService:
    """The API's application core, separated from HTTP plumbing for tests."""

    def __init__(
        self,
        queue: JobQueue,
        store_path: str,
        *,
        default_max_attempts: int | None = None,
    ) -> None:
        self.queue = queue
        self.store_path = store_path
        self.default_max_attempts = default_max_attempts
        self.draining = False
        self._lock = threading.Lock()

    def submit(self, document: Mapping[str, object]) -> dict:
        if self.draining:
            raise QueueError("service is draining; submissions are closed")
        if "spec" in document:
            spec_doc = document["spec"]
            max_attempts = document.get("max_attempts", self.default_max_attempts)
            store_path = str(document.get("store") or self.store_path)
        else:
            spec_doc = document
            max_attempts = self.default_max_attempts
            store_path = self.store_path
        if not isinstance(spec_doc, Mapping):
            raise SpecError("campaign spec must be a JSON object")
        # Scenarios whose fingerprint already has a result row are born done:
        # duplicate submissions dedupe through the store for free.
        completed = ResultStore(store_path).fingerprints()
        result = self.queue.submit(
            spec_doc,
            store_path,
            max_attempts=(None if max_attempts is None else int(max_attempts)),
            completed_fingerprints=completed,
        )
        return result.as_dict()

    def drain(self) -> dict:
        with self._lock:
            self.draining = True
        return {"draining": True, "depth": self.queue.stats()["depth"]}


class _Handler(BaseHTTPRequestHandler):
    # Set by make_server on the handler class.
    service: FarmService
    quiet = True

    # Framing ---------------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: object, status: int = 200) -> None:
        self._send(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            "application/json",
        )

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body (expected a JSON document)")
        return json.loads(raw.decode("utf-8"))

    # Routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        service = self.service
        try:
            if path == "/healthz":
                self._json({"ok": True, "draining": service.draining})
            elif path == "/queue/stats":
                self._json(service.queue.stats())
            elif path == "/metrics":
                text = prometheus_text(metrics_telemetry(service.queue))
                self._send(
                    200, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/campaigns":
                self._json({"campaigns": service.queue.campaigns()})
            elif path.startswith("/campaigns/"):
                self._json(service.queue.campaign(path.split("/", 2)[2]))
            elif path.startswith("/jobs/"):
                job_id = path.split("/", 2)[2]
                if not job_id.isdigit():
                    raise QueueError(f"job ids are integers, got {job_id!r}")
                self._json(service.queue.job(int(job_id)).as_dict())
            else:
                self._error(404, f"no such resource {path!r}")
        except QueueError as error:
            self._error(404, str(error))
        # detlint: ignore[broad-except] HTTP boundary: any leak becomes a 500, never a dead handler thread
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        service = self.service
        try:
            if path == "/campaigns":
                if service.draining:
                    self._error(503, "service is draining; submissions are closed")
                    return
                document = self._read_json()
                if not isinstance(document, dict):
                    raise SpecError("campaign submission must be a JSON object")
                self._json(service.submit(document), status=201)
            elif path == "/drain":
                self._json(service.drain())
            else:
                self._error(404, f"no such resource {path!r}")
        except (SpecError, QueueError, ValueError) as error:
            self._error(400, str(error))
        # detlint: ignore[broad-except] HTTP boundary: any leak becomes a 500, never a dead handler thread
        except Exception as error:  # pragma: no cover - defensive
            self._error(500, f"{type(error).__name__}: {error}")


def make_server(
    service: FarmService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Build (but do not start) the control-plane HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address`` — tests and the in-process example rely on
    that.
    """
    handler = type("FarmHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


@contextlib.contextmanager
def serve_forever(service: FarmService, host: str = "127.0.0.1", port: int = 0):
    """Context manager running the API on a background thread (tests, examples).

    Yields the bound ``(host, port)`` tuple; the server is shut down and
    joined on exit.
    """
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
