"""repro.service — campaigns as a durable benchmark farm.

The campaign machinery (:mod:`repro.campaign`) runs a sweep as one process's
one-shot job.  This package wraps it in a *service*: a sqlite-backed durable
job queue with atomic time-limited leases (:mod:`repro.service.queue`), a
worker fleet pulling scenarios through the existing runner, step registry and
shared stage cache (:mod:`repro.service.worker`), and a stdlib HTTP control
plane with Prometheus metrics (:mod:`repro.service.api`), all operated
through ``impressions service ...`` (:mod:`repro.service.cli`).

Design invariants the tests hold the package to:

- **Durability** — every queue mutation is one sqlite transaction; killing
  any process at any instant leaves the queue consistent.
- **Crash recovery** — a worker that dies mid-job stops extending its lease;
  the job is reclaimed on expiry and retried (with exponential backoff) up
  to its budget, then dead-lettered with the captured error.
- **Idempotence** — jobs are keyed by scenario fingerprint (UNIQUE), so
  concurrent duplicate submissions execute each scenario exactly once, and
  re-execution after a crash appends a bit-identical result row.
"""

from repro.service.queue import (
    DEAD,
    DONE,
    LEASED,
    PENDING,
    Job,
    JobQueue,
    QueueError,
    SubmitResult,
)
from repro.service.worker import Worker, WorkerOptions, WorkerResult, run_worker

__all__ = [
    "PENDING",
    "LEASED",
    "DONE",
    "DEAD",
    "Job",
    "JobQueue",
    "QueueError",
    "SubmitResult",
    "Worker",
    "WorkerOptions",
    "WorkerResult",
    "run_worker",
]
