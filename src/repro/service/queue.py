"""The sqlite-backed durable job queue: atomic leases, backoff, dead letters.

One :class:`JobQueue` database is the farm's source of truth.  Campaign
submissions expand to one *job* per scenario, keyed — and deduplicated — by
the scenario's spec+seed fingerprint (:func:`repro.campaign.spec.scenario_fingerprint`):
a ``UNIQUE`` index on the fingerprint means two clients racing to submit the
same sweep enqueue every scenario exactly once, and a campaign whose
scenarios are already in the result store is born complete.

Jobs move through a small state machine::

    pending ──lease──▶ leased ──ack──▶ done
       ▲                 │
       │   reclaim /     ├──fail──▶ pending (retry, exponential backoff)
       └── lease expiry ─┘             │ attempts exhausted
                                       ▼
                                     dead  (parked with the captured traceback)

Leases are *time-limited*: a worker that crashes or hangs simply stops
extending its lease, and the next :meth:`JobQueue.reclaim_expired` (run by
every ``lease`` call, so the queue is self-healing) returns the job to
``pending`` with an exponential-backoff ``not_before``.  After
``max_attempts`` the job is parked in the ``dead`` state with its last error
so a hopeless scenario can never wedge the farm.

Everything is a single sqlite file in WAL mode; every mutation runs inside a
``BEGIN IMMEDIATE`` transaction, which is what makes lease handoff atomic
across worker processes and HTTP server threads.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.campaign.spec import CampaignSpec
from repro.faults import plan as fault_plan

__all__ = [
    "QUEUE_FORMAT_VERSION",
    "PENDING",
    "LEASED",
    "DONE",
    "DEAD",
    "STATES",
    "QueueError",
    "Job",
    "SubmitResult",
    "JobQueue",
]

#: Bumped when the queue schema changes incompatibly.
QUEUE_FORMAT_VERSION = 1

PENDING = "pending"
LEASED = "leased"
DONE = "done"
DEAD = "dead"
STATES = (PENDING, LEASED, DONE, DEAD)

#: Counter rows maintained by the queue (exposed by stats() and /metrics).
_COUNTERS = (
    "lease_reclaims",
    "job_retries",
    "jobs_dead",
    "jobs_leased",
    "jobs_done",
    "jobs_failed",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    rowid_alias INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL UNIQUE,
    name TEXT NOT NULL,
    spec TEXT NOT NULL,
    store TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT NOT NULL UNIQUE,
    campaign_id TEXT NOT NULL,
    scenario_id TEXT NOT NULL,
    payload TEXT NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    not_before REAL NOT NULL DEFAULT 0,
    lease_expires REAL,
    worker TEXT,
    error TEXT,
    result TEXT,
    duration_seconds REAL,
    created REAL NOT NULL,
    updated REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs (state, not_before);
CREATE TABLE IF NOT EXISTS campaign_jobs (
    campaign_id TEXT NOT NULL,
    job_id INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, job_id)
);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value REAL NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS heartbeats (
    worker TEXT PRIMARY KEY,
    beat REAL NOT NULL,
    job_id INTEGER,
    jobs_done INTEGER NOT NULL DEFAULT 0
);
"""


class QueueError(RuntimeError):
    """Raised on invalid queue operations (unknown ids, bad submissions)."""


@dataclass(frozen=True)
class Job:
    """One scenario's row in the queue (a snapshot, not a live handle)."""

    job_id: int
    fingerprint: str
    campaign_id: str
    scenario_id: str
    payload: dict
    state: str
    attempts: int
    max_attempts: int
    not_before: float
    lease_expires: float | None
    worker: str | None
    error: str | None
    result: dict | None
    duration_seconds: float | None
    created: float
    updated: float

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "campaign_id": self.campaign_id,
            "scenario_id": self.scenario_id,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "not_before": self.not_before,
            "lease_expires": self.lease_expires,
            "worker": self.worker,
            "error": self.error,
            "result": self.result,
            "duration_seconds": self.duration_seconds,
            "created": self.created,
            "updated": self.updated,
        }


@dataclass
class SubmitResult:
    """What one campaign submission did to the queue."""

    campaign_id: str
    name: str
    total: int
    enqueued: list[str] = field(default_factory=list)
    deduped: list[str] = field(default_factory=list)
    already_done: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "campaign": self.campaign_id,
            "name": self.name,
            "total": self.total,
            "enqueued": len(self.enqueued),
            "deduped": len(self.deduped),
            "already_done": len(self.already_done),
        }


def _row_to_job(row: sqlite3.Row) -> Job:
    return Job(
        job_id=int(row["job_id"]),
        fingerprint=str(row["fingerprint"]),
        campaign_id=str(row["campaign_id"]),
        scenario_id=str(row["scenario_id"]),
        payload=json.loads(row["payload"]),
        state=str(row["state"]),
        attempts=int(row["attempts"]),
        max_attempts=int(row["max_attempts"]),
        not_before=float(row["not_before"]),
        lease_expires=(None if row["lease_expires"] is None else float(row["lease_expires"])),
        worker=(None if row["worker"] is None else str(row["worker"])),
        error=(None if row["error"] is None else str(row["error"])),
        result=(None if row["result"] is None else json.loads(row["result"])),
        duration_seconds=(
            None if row["duration_seconds"] is None else float(row["duration_seconds"])
        ),
        created=float(row["created"]),
        updated=float(row["updated"]),
    )


class JobQueue:
    """A durable, multi-process job queue over one sqlite database file.

    Args:
        path: the sqlite database file (created with WAL journaling).
        default_max_attempts: retry budget for jobs submitted without an
            explicit one; a job's *last* attempt failing parks it ``dead``.
        backoff_base: seconds of ``not_before`` delay after the first
            failure; doubles per subsequent attempt (``base * 2**(n-1)``).
        backoff_cap: upper bound on the computed backoff delay.
        clock: injectable epoch clock (tests pass a fake to step time).

    The queue object is safe to share across threads (one connection guarded
    by a lock); separate *processes* each open their own ``JobQueue`` on the
    same path and coordinate purely through sqlite's locking.
    """

    def __init__(
        self,
        path: str,
        *,
        default_max_attempts: int = 3,
        backoff_base: float = 1.0,
        backoff_cap: float = 60.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if default_max_attempts < 1:
            raise QueueError("default_max_attempts must be at least 1")
        self.path = path
        self.default_max_attempts = default_max_attempts
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._clock = clock or time.time
        self._lock = threading.RLock()
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(path, timeout=30.0, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('format', ?)",
                (str(QUEUE_FORMAT_VERSION),),
            )
            for name in _COUNTERS:
                self._conn.execute(
                    "INSERT OR IGNORE INTO counters (name, value) VALUES (?, 0)", (name,)
                )
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # Transaction plumbing ---------------------------------------------------

    def _tx(self) -> "sqlite3.Cursor":
        """A cursor inside a fresh IMMEDIATE transaction (caller commits)."""
        cursor = self._conn.cursor()
        cursor.execute("BEGIN IMMEDIATE")
        return cursor

    def _bump(self, cursor: sqlite3.Cursor, counter: str, amount: float = 1.0) -> None:
        cursor.execute(
            "UPDATE counters SET value = value + ? WHERE name = ?", (amount, counter)
        )

    def now(self) -> float:
        return float(self._clock())

    # Submission -------------------------------------------------------------

    def submit(
        self,
        spec: "CampaignSpec | Mapping[str, object]",
        store_path: str,
        *,
        max_attempts: int | None = None,
        completed_fingerprints: "set[str] | None" = None,
    ) -> SubmitResult:
        """Expand ``spec`` into jobs, deduplicating by scenario fingerprint.

        Every scenario either (a) enqueues a fresh ``pending`` job, (b) joins
        an existing job with the same fingerprint — submitted by this or any
        other campaign, in any state — or (c) is recorded ``done`` on arrival
        because its fingerprint appears in ``completed_fingerprints``
        (typically :meth:`repro.campaign.store.ResultStore.fingerprints`).
        The campaign tracks all three through the ``campaign_jobs`` link
        table, so its progress counts deduped work it never enqueued.
        """
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(spec)
        budget = self.default_max_attempts if max_attempts is None else int(max_attempts)
        if budget < 1:
            raise QueueError("max_attempts must be at least 1")
        scenarios = spec.expand()
        completed = completed_fingerprints or set()
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                cursor.execute(
                    "INSERT INTO campaigns (campaign_id, name, spec, store, created) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        "",  # placeholder; the id embeds the rowid assigned below
                        spec.name,
                        json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":")),
                        store_path,
                        now,
                    ),
                )
                campaign_id = f"c{cursor.lastrowid}"
                cursor.execute(
                    "UPDATE campaigns SET campaign_id = ? WHERE rowid_alias = ?",
                    (campaign_id, cursor.lastrowid),
                )
                result = SubmitResult(
                    campaign_id=campaign_id, name=spec.name, total=len(scenarios)
                )
                for scenario in scenarios:
                    payload = scenario.payload()
                    state = DONE if scenario.fingerprint in completed else PENDING
                    cursor.execute(
                        "INSERT OR IGNORE INTO jobs (fingerprint, campaign_id, "
                        "scenario_id, payload, state, max_attempts, created, updated) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            scenario.fingerprint,
                            campaign_id,
                            scenario.scenario_id,
                            json.dumps(payload, sort_keys=True, separators=(",", ":")),
                            state,
                            budget,
                            now,
                            now,
                        ),
                    )
                    if cursor.rowcount:
                        if state == DONE:
                            result.already_done.append(scenario.scenario_id)
                        else:
                            result.enqueued.append(scenario.scenario_id)
                        job_id = cursor.lastrowid
                    else:
                        result.deduped.append(scenario.scenario_id)
                        job_id = cursor.execute(
                            "SELECT job_id FROM jobs WHERE fingerprint = ?",
                            (scenario.fingerprint,),
                        ).fetchone()["job_id"]
                    cursor.execute(
                        "INSERT OR IGNORE INTO campaign_jobs (campaign_id, job_id) "
                        "VALUES (?, ?)",
                        (campaign_id, job_id),
                    )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return result

    # Lease / ack / fail -----------------------------------------------------

    def lease(self, worker_id: str, ttl_seconds: float) -> Job | None:
        """Atomically claim the oldest runnable pending job, or None.

        Expired leases are reclaimed first (the queue heals itself on every
        lease attempt), then the oldest ``pending`` job whose ``not_before``
        has passed flips to ``leased`` with a ``lease_expires`` deadline this
        worker must keep extending (:meth:`extend_lease`) while it runs.
        """
        if ttl_seconds <= 0:
            raise QueueError("lease ttl must be positive")
        fault_plan.check("queue.lease")
        self.reclaim_expired()
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                row = cursor.execute(
                    "SELECT * FROM jobs WHERE state = ? AND not_before <= ? "
                    "ORDER BY job_id LIMIT 1",
                    (PENDING, now),
                ).fetchone()
                if row is None:
                    self._conn.commit()
                    return None
                cursor.execute(
                    "UPDATE jobs SET state = ?, worker = ?, lease_expires = ?, "
                    "attempts = attempts + 1, updated = ? WHERE job_id = ?",
                    (LEASED, worker_id, now + ttl_seconds, now, row["job_id"]),
                )
                self._bump(cursor, "jobs_leased")
                fresh = cursor.execute(
                    "SELECT * FROM jobs WHERE job_id = ?", (row["job_id"],)
                ).fetchone()
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return _row_to_job(fresh)

    def extend_lease(self, job_id: int, worker_id: str, ttl_seconds: float) -> bool:
        """Push the lease deadline out; False if this worker lost the lease."""
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                cursor.execute(
                    "UPDATE jobs SET lease_expires = ?, updated = ? "
                    "WHERE job_id = ? AND worker = ? AND state = ?",
                    (now + ttl_seconds, now, job_id, worker_id, LEASED),
                )
                extended = bool(cursor.rowcount)
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return extended

    def ack(
        self,
        job_id: int,
        worker_id: str,
        *,
        duration_seconds: float,
        result: Mapping[str, object] | None = None,
    ) -> bool:
        """Complete a leased job; False if the lease was lost in the meantime.

        A late ack after a lease reclaim is not an error: determinism means
        the re-executed job produced the identical result row, so the loser
        simply discards its copy (the caller must treat ``False`` as "someone
        else owns this now", not as a failure).
        """
        fault_plan.check("queue.ack")
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                cursor.execute(
                    "UPDATE jobs SET state = ?, lease_expires = NULL, error = NULL, "
                    "result = ?, duration_seconds = ?, updated = ? "
                    "WHERE job_id = ? AND worker = ? AND state = ?",
                    (
                        DONE,
                        None if result is None else json.dumps(result, sort_keys=True),
                        float(duration_seconds),
                        now,
                        job_id,
                        worker_id,
                        LEASED,
                    ),
                )
                acked = bool(cursor.rowcount)
                if acked:
                    self._bump(cursor, "jobs_done")
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return acked

    def fail(self, job_id: int, worker_id: str, error: str) -> str:
        """Record a failed attempt: retry with backoff or park dead.

        Returns ``"retried"``, ``"dead"``, or ``"lost"`` (the lease was
        already reclaimed — the captured error is recorded anyway so the
        traceback is not thrown away, but the job's state is untouched).
        """
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                row = cursor.execute(
                    "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
                ).fetchone()
                if row is None:
                    self._conn.commit()
                    raise QueueError(f"no such job {job_id}")
                if row["state"] != LEASED or row["worker"] != worker_id:
                    cursor.execute(
                        "UPDATE jobs SET error = COALESCE(error, ?) WHERE job_id = ?",
                        (error, job_id),
                    )
                    self._conn.commit()
                    return "lost"
                outcome = self._retry_or_park(
                    cursor, row, now, error=error, counter="jobs_failed"
                )
                self._conn.commit()
            except QueueError:
                raise
            except BaseException:
                self._conn.rollback()
                raise
        return outcome

    def _retry_or_park(
        self,
        cursor: sqlite3.Cursor,
        row: sqlite3.Row,
        now: float,
        *,
        error: str,
        counter: str,
    ) -> str:
        """Shared fail/reclaim tail: backoff retry or dead-letter parking."""
        self._bump(cursor, counter)
        attempts = int(row["attempts"])
        if attempts >= int(row["max_attempts"]):
            cursor.execute(
                "UPDATE jobs SET state = ?, lease_expires = NULL, error = ?, "
                "updated = ? WHERE job_id = ?",
                (DEAD, error, now, row["job_id"]),
            )
            self._bump(cursor, "jobs_dead")
            return "dead"
        backoff = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempts - 1)))
        cursor.execute(
            "UPDATE jobs SET state = ?, lease_expires = NULL, worker = NULL, "
            "error = ?, not_before = ?, updated = ? WHERE job_id = ?",
            (PENDING, error, now + backoff, now, row["job_id"]),
        )
        self._bump(cursor, "job_retries")
        return "retried"

    def reclaim_expired(self) -> int:
        """Return every expired lease to the queue (or park it dead).

        A crashed or hung worker stops extending its lease; once
        ``lease_expires`` passes, the job is handed back with exponential
        backoff exactly as if the worker had reported a failure — except the
        recorded error notes the expiry, since the worker kept no appointment
        to report anything.
        """
        now = self.now()
        reclaimed = 0
        with self._lock:
            cursor = self._tx()
            try:
                rows = cursor.execute(
                    "SELECT * FROM jobs WHERE state = ? AND lease_expires IS NOT NULL "
                    "AND lease_expires < ?",
                    (LEASED, now),
                ).fetchall()
                for row in rows:
                    error = (
                        f"lease expired (worker {row['worker']!r}, attempt "
                        f"{row['attempts']}/{row['max_attempts']}): worker crashed "
                        "or stopped heartbeating"
                    )
                    self._retry_or_park(
                        cursor, row, now, error=error, counter="lease_reclaims"
                    )
                    reclaimed += 1
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        for _ in range(reclaimed):
            fault_plan.count_heal("queue", "lease_reclaim")
        return reclaimed

    def retry_dead(self, job_id: int) -> Job:
        """Manually resurrect a dead-lettered job with a fresh retry budget."""
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                cursor.execute(
                    "UPDATE jobs SET state = ?, attempts = 0, not_before = 0, "
                    "worker = NULL, updated = ? WHERE job_id = ? AND state = ?",
                    (PENDING, now, job_id, DEAD),
                )
                if not cursor.rowcount:
                    self._conn.commit()
                    raise QueueError(f"job {job_id} is not dead-lettered")
                row = cursor.execute(
                    "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
                ).fetchone()
                self._conn.commit()
            except QueueError:
                raise
            except BaseException:
                self._conn.rollback()
                raise
        return _row_to_job(row)

    # Heartbeats -------------------------------------------------------------

    def record_heartbeat(
        self, worker_id: str, job_id: int | None = None, jobs_done: int = 0
    ) -> None:
        """Upsert this worker's liveness row (what ``status`` and ETA read)."""
        now = self.now()
        with self._lock:
            cursor = self._tx()
            try:
                cursor.execute(
                    "INSERT INTO heartbeats (worker, beat, job_id, jobs_done) "
                    "VALUES (?, ?, ?, ?) ON CONFLICT(worker) DO UPDATE SET "
                    "beat = excluded.beat, job_id = excluded.job_id, "
                    "jobs_done = excluded.jobs_done",
                    (worker_id, now, job_id, jobs_done),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    def heartbeats(self, max_age_seconds: float | None = None) -> list[dict]:
        """Worker liveness rows, optionally only those beating recently."""
        now = self.now()
        with self._lock:
            rows = self._conn.execute(
                "SELECT worker, beat, job_id, jobs_done FROM heartbeats ORDER BY worker"
            ).fetchall()
        out = []
        for row in rows:
            age = now - float(row["beat"])
            if max_age_seconds is not None and age > max_age_seconds:
                continue
            out.append(
                {
                    "worker": str(row["worker"]),
                    "age_seconds": age,
                    "job_id": (None if row["job_id"] is None else int(row["job_id"])),
                    "jobs_done": int(row["jobs_done"]),
                }
            )
        return out

    # Introspection ----------------------------------------------------------

    def job(self, job_id: int) -> Job:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise QueueError(f"no such job {job_id}")
        return _row_to_job(row)

    def jobs(self, *, state: str | None = None, campaign_id: str | None = None) -> list[Job]:
        query = "SELECT jobs.* FROM jobs"
        params: list[object] = []
        clauses = []
        if campaign_id is not None:
            query += " JOIN campaign_jobs USING (job_id)"
            clauses.append("campaign_jobs.campaign_id = ?")
            params.append(campaign_id)
        if state is not None:
            clauses.append("jobs.state = ?")
            params.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY jobs.job_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [_row_to_job(row) for row in rows]

    def campaign(self, campaign_id: str) -> dict:
        """Campaign progress: per-state counts, completeness, rate and ETA."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM campaigns WHERE campaign_id = ?", (campaign_id,)
            ).fetchone()
        if row is None:
            raise QueueError(f"no such campaign {campaign_id}")
        jobs = self.jobs(campaign_id=campaign_id)
        by_state = {state: 0 for state in STATES}
        for job in jobs:
            by_state[job.state] += 1
        done = by_state[DONE]
        total = len(jobs)
        now = self.now()
        # Completion rate over this campaign's recently finished jobs; their
        # `updated` stamps are completion times.
        finished = sorted(
            job.updated for job in jobs if job.state == DONE and job.duration_seconds is not None
        )
        recent = [stamp for stamp in finished if now - stamp <= 300.0][-20:]
        rate = 0.0
        if len(recent) >= 2 and recent[-1] > recent[0]:
            rate = (len(recent) - 1) / (recent[-1] - recent[0])
        remaining = by_state[PENDING] + by_state[LEASED]
        eta = remaining / rate if rate > 0 and remaining else None
        state = "complete" if done == total else ("failed" if by_state[DEAD] else "running")
        return {
            "campaign": campaign_id,
            "name": str(row["name"]),
            "store": str(row["store"]),
            "created": float(row["created"]),
            "state": state,
            "total": total,
            "jobs": by_state,
            "done": done,
            "progress": (done / total if total else 1.0),
            "rate_per_second": rate,
            "eta_seconds": eta,
        }

    def campaigns(self) -> list[dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT campaign_id FROM campaigns ORDER BY rowid_alias"
            ).fetchall()
        return [self.campaign(str(row["campaign_id"])) for row in rows]

    def campaign_spec(self, campaign_id: str) -> CampaignSpec:
        with self._lock:
            row = self._conn.execute(
                "SELECT spec FROM campaigns WHERE campaign_id = ?", (campaign_id,)
            ).fetchone()
        if row is None:
            raise QueueError(f"no such campaign {campaign_id}")
        return CampaignSpec.from_json(str(row["spec"]))

    def counters(self) -> dict[str, float]:
        with self._lock:
            rows = self._conn.execute("SELECT name, value FROM counters").fetchall()
        return {str(row["name"]): float(row["value"]) for row in rows}

    def durations(self, limit: int = 1000) -> list[float]:
        """Recent completed-job durations (newest first), for /metrics."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT duration_seconds FROM jobs WHERE duration_seconds IS NOT NULL "
                "ORDER BY updated DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        return [float(row["duration_seconds"]) for row in rows]

    def stats(self) -> dict:
        """One queue-health snapshot: depths, counters, workers, staleness."""
        self.reclaim_expired()
        now = self.now()
        with self._lock:
            state_rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
            oldest = self._conn.execute(
                "SELECT MIN(created) AS t FROM jobs WHERE state = ?", (PENDING,)
            ).fetchone()
            campaigns = self._conn.execute(
                "SELECT COUNT(*) AS n FROM campaigns"
            ).fetchone()
        by_state = {state: 0 for state in STATES}
        for row in state_rows:
            by_state[str(row["state"])] = int(row["n"])
        oldest_age = None
        if oldest["t"] is not None:
            oldest_age = now - float(oldest["t"])
        return {
            "format": QUEUE_FORMAT_VERSION,
            "path": self.path,
            "jobs": by_state,
            "depth": by_state[PENDING] + by_state[LEASED],
            "campaigns": int(campaigns["n"]),
            "counters": self.counters(),
            "workers": self.heartbeats(max_age_seconds=60.0),
            "oldest_pending_age_seconds": oldest_age,
        }

    # Garbage collection -----------------------------------------------------

    def gc(self, *, older_than_seconds: float = 0.0, dry_run: bool = False) -> dict:
        """Drop finished (``done``) jobs and stale heartbeats.

        Only terminal successes are collected — ``dead`` jobs are kept until
        an operator inspects them (``retry_dead`` or a manual purge), and
        pending/leased jobs are never touched.  The result-store row is the
        durable record of a done job, so dropping the queue row loses
        nothing.
        """
        cutoff = self.now() - max(0.0, older_than_seconds)
        with self._lock:
            cursor = self._tx()
            try:
                doomed = cursor.execute(
                    "SELECT COUNT(*) AS n FROM jobs WHERE state = ? AND updated <= ?",
                    (DONE, cutoff),
                ).fetchone()
                stale = cursor.execute(
                    "SELECT COUNT(*) AS n FROM heartbeats WHERE beat <= ?", (cutoff,)
                ).fetchone()
                report = {
                    "dry_run": dry_run,
                    "jobs_collected": int(doomed["n"]),
                    "heartbeats_collected": int(stale["n"]),
                }
                if not dry_run:
                    cursor.execute(
                        "DELETE FROM campaign_jobs WHERE job_id IN "
                        "(SELECT job_id FROM jobs WHERE state = ? AND updated <= ?)",
                        (DONE, cutoff),
                    )
                    cursor.execute(
                        "DELETE FROM jobs WHERE state = ? AND updated <= ?",
                        (DONE, cutoff),
                    )
                    cursor.execute("DELETE FROM heartbeats WHERE beat <= ?", (cutoff,))
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return report
