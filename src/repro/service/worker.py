"""Farm workers: lease scenarios, run them, heartbeat, append results.

A worker is a loop around :meth:`~repro.service.queue.JobQueue.lease`: claim
a job, execute its scenario payload through the existing campaign machinery
(:func:`repro.campaign.runner.run_scenario` — the pipeline, the step
registry, the shared stage cache), append the result row to the campaign's
JSONL store, and ack.  While a job runs, a background thread keeps the lease
alive and upserts a heartbeat row; a worker that dies simply stops doing
both, and the queue reclaims the job after the lease expires.

Stage-cache coexistence: all workers of a farm share one ``cache_dir``
(knob-sharing scenarios restore each other's pipeline prefixes).  Each job is
executed under :func:`repro.pipeline.cache.cache_lock` so two lease holders
generating at once surface as :class:`~repro.pipeline.cache.CacheBusyError`;
the worker retries with exponential backoff plus deterministic jitter, and
after ``cache_busy_retries`` attempts proceeds in shared mode
(``on_busy="ignore"``) — safe because cache writes are atomic and
content-addressed, just redundant.

Crash-safety contract (what the tests SIGKILL workers to prove): the result
row is appended to the store *before* the ack, and rows are deterministic
functions of the scenario — so every interleaving of crash, reclaim and
re-execution converges to a store whose latest row per fingerprint is
bit-identical (modulo ``wall``/``cache``) to an uninterrupted run, and
``store.compact()`` collapses any benign duplicates.
"""

from __future__ import annotations

import contextlib
import math
import os
import random
import sqlite3
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Sequence

from repro.campaign.runner import TELEMETRY_KEY, run_scenario
from repro.campaign.store import ResultStore
from repro.faults import plan as fault_plan
from repro.obs import core as obs_core
from repro.pipeline.cache import CacheBusyError, cache_lock
from repro.service.queue import Job, JobQueue

__all__ = [
    "WorkerOptions",
    "WorkerResult",
    "Worker",
    "run_worker",
    "derived_lock_max_age",
]


def derived_lock_max_age(
    durations: Sequence[float],
    fallback: float,
    *,
    safety_factor: float = 20.0,
    min_samples: int = 8,
    floor_seconds: float = 60.0,
) -> float:
    """A stage-cache lock max-age learned from observed job durations.

    A lock's max-age must exceed the worst-case single-job wall time (else a
    slow-but-healthy holder gets its lock stolen mid-run) while staying small
    enough that a recycled-pid zombie lock cannot wedge the farm for the
    fixed worst-case default.  The p99 of the queue's recorded
    ``duration_seconds`` × ``safety_factor`` tracks the actual workload:
    second-long smoke scenarios get minute-scale reclaim, hour-long
    generation keeps the conservative bound.  Below ``min_samples``
    completions there is no telemetry worth trusting, so the configured
    ``fallback`` knob applies; the derived value is clamped to
    ``[floor_seconds, fallback]`` so it only ever *tightens* the knob.
    """
    if len(durations) < min_samples:
        return fallback
    ordered = sorted(durations)
    p99 = ordered[min(len(ordered) - 1, max(0, math.ceil(0.99 * len(ordered)) - 1))]
    return min(max(p99 * safety_factor, floor_seconds), fallback)


@dataclass
class WorkerOptions:
    """Everything one worker needs to run (mirrors the CLI flags)."""

    queue_path: str
    store_path: str
    worker_id: str = ""
    lease_ttl: float = 60.0
    poll_interval: float = 0.5
    cache_dir: str | None = None
    obs_dir: str | None = None
    #: exit when the queue has no runnable work (otherwise poll forever).
    drain: bool = False
    #: stop after this many completed jobs (None = unbounded).
    max_jobs: int | None = None
    #: CacheBusyError retries before falling back to shared-cache mode.
    cache_busy_retries: int = 4
    cache_busy_backoff: float = 0.25
    #: stage-cache locks older than this are stale (recycled-pid insurance);
    #: must exceed the farm's worst-case single-job wall time.  Once the
    #: queue holds enough completed-job durations this acts as the *ceiling*:
    #: the effective max-age is derived per job from the duration p99 (see
    #: :func:`derived_lock_max_age`).
    cache_lock_max_age: float = 3600.0
    #: multiplier over the observed p99 job duration when deriving the lock
    #: max-age from telemetry.
    lock_age_safety_factor: float = 20.0
    #: completed-job durations required before trusting the derived max-age.
    lock_age_min_samples: int = 8
    #: transient queue I/O errors (EIO on the sqlite file, a full disk) are
    #: retried this many times with exponential backoff before the worker
    #: gives up and lets the error surface.
    queue_retry_attempts: int = 3
    queue_retry_backoff: float = 0.2
    #: chaos hook for crash-safety tests: ``"hang-after-lease:SECONDS"``
    #: sleeps (heartbeating) between lease and execution, giving a test a
    #: deterministic window to SIGKILL the worker mid-job.
    inject_fault: str = ""

    def resolved_worker_id(self) -> str:
        return self.worker_id or f"worker-{os.getpid()}"


@dataclass
class WorkerResult:
    """What one worker loop did before exiting."""

    worker_id: str
    jobs_done: int = 0
    jobs_failed: int = 0
    acks_lost: int = 0
    cache_busy_retries: int = 0
    executed: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "worker": self.worker_id,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "acks_lost": self.acks_lost,
            "cache_busy_retries": self.cache_busy_retries,
            "executed": list(self.executed),
        }


class _LeaseKeeper:
    """Background thread extending one job's lease and heartbeating."""

    def __init__(self, queue: JobQueue, job: Job, worker_id: str, ttl: float, jobs_done: int):
        self._queue = queue
        self._job = job
        self._worker_id = worker_id
        self._ttl = ttl
        self._jobs_done = jobs_done
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(0.05, self._ttl / 3.0)
        while not self._stop.wait(interval):
            if not self._queue.extend_lease(self._job.job_id, self._worker_id, self._ttl):
                # Reclaimed under us (we hung past the ttl once): stop burning
                # heartbeats; the executing thread notices via ``lost``.
                self.lost = True
                return
            self._queue.record_heartbeat(
                self._worker_id, job_id=self._job.job_id, jobs_done=self._jobs_done
            )

    def __enter__(self) -> "_LeaseKeeper":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class Worker:
    """One farm worker; ``run()`` blocks until drained, capped, or stopped."""

    def __init__(self, options: WorkerOptions, *, queue: JobQueue | None = None) -> None:
        self.options = options
        self.worker_id = options.resolved_worker_id()
        self.queue = queue if queue is not None else JobQueue(options.queue_path)
        self.store = ResultStore(options.store_path)
        self.telemetry = obs_core.Telemetry(run_id=f"service-{self.worker_id}")
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit after the in-flight job (if any) completes."""
        self._stop.set()

    # Job execution ----------------------------------------------------------

    def _fault_hang_seconds(self) -> float:
        fault = self.options.inject_fault
        if fault.startswith("hang-after-lease:"):
            return float(fault.split(":", 1)[1])
        if fault:
            raise ValueError(f"unknown inject_fault {fault!r}")
        return 0.0

    def _queue_io(self, label: str, operation):
        """Run a queue operation, retrying transient I/O errors with backoff.

        EIO on the sqlite file or a momentarily full disk should not kill a
        worker that has healthy jobs in flight; each retry is counted as a
        heal.  :class:`~repro.faults.plan.InjectedCrash` is process death and
        is never retried.
        """
        attempts = max(0, self.options.queue_retry_attempts)
        for attempt in range(attempts + 1):
            try:
                return operation()
            except (OSError, sqlite3.OperationalError):
                if attempt >= attempts:
                    raise
                fault_plan.count_heal("queue", f"{label}_retry")
                self.telemetry.counter(
                    "service_queue_io_retries_total",
                    "transient queue I/O errors retried by workers",
                    ("op",),
                ).inc(op=label)
                time.sleep(self.options.queue_retry_backoff * (2.0 ** attempt))
        raise AssertionError("unreachable")

    def _lock_max_age(self) -> float:
        """The effective stage-cache lock max-age for the next job.

        Derived from the queue's observed job durations (p99 × safety
        factor); the configured ``cache_lock_max_age`` knob is the fallback
        below the sample threshold and the ceiling above it.  Telemetry
        being unreadable is never a reason not to run a job.
        """
        options = self.options
        try:
            durations = self.queue.durations()
        except (OSError, sqlite3.OperationalError):
            return options.cache_lock_max_age
        derived = derived_lock_max_age(
            durations,
            options.cache_lock_max_age,
            safety_factor=options.lock_age_safety_factor,
            min_samples=options.lock_age_min_samples,
        )
        self.telemetry.gauge(
            "service_cache_lock_max_age_seconds",
            "effective stage-cache lock max-age (derived from job durations)",
        ).set(derived)
        return derived

    def _execute_payload(self, payload: dict, attempt: int, result: WorkerResult) -> dict:
        """Run one scenario payload, negotiating the shared stage cache.

        The per-job ``cache_lock`` makes concurrent generation visible as
        :class:`CacheBusyError`; retries back off with jitter derived
        deterministically from (worker, fingerprint, attempt), and the final
        fallback shares the directory (atomic writes make that benign).
        """
        cache_dir = self.options.cache_dir
        if not cache_dir:
            return run_scenario(payload)
        lock_max_age = self._lock_max_age()
        rng = random.Random(f"{self.worker_id}:{payload['fingerprint']}:{attempt}")
        for busy_try in range(self.options.cache_busy_retries + 1):
            on_busy = "error" if busy_try < self.options.cache_busy_retries else "ignore"
            try:
                with cache_lock(
                    cache_dir,
                    owner=self.worker_id,
                    on_busy=on_busy,
                    max_age_seconds=lock_max_age,
                ):
                    return run_scenario(payload)
            except CacheBusyError:
                result.cache_busy_retries += 1
                self.telemetry.counter(
                    "service_cache_busy_retries_total",
                    "CacheBusyError retries while negotiating the shared stage cache",
                ).inc()
                delay = self.options.cache_busy_backoff * (2.0 ** busy_try)
                time.sleep(delay + rng.uniform(0.0, delay))
        raise AssertionError("unreachable: final cache attempt shares the directory")

    def _run_job(self, job: Job, result: WorkerResult) -> None:
        options = self.options
        payload = dict(job.payload)
        if options.cache_dir:
            payload["cache_dir"] = options.cache_dir
        payload["telemetry"] = True
        keeper = _LeaseKeeper(
            self.queue, job, self.worker_id, options.lease_ttl, result.jobs_done
        )
        start = time.perf_counter()
        with keeper:
            hang = self._fault_hang_seconds()
            if hang:  # pragma: no cover - exercised via SIGKILL in crash tests
                time.sleep(hang)
            try:
                fault_plan.check("worker.after_lease")
                row = self._execute_payload(payload, job.attempts, result)
            except (KeyboardInterrupt, fault_plan.InjectedCrash):
                # Process death (real or simulated) runs no failure handler:
                # the lease simply expires and the queue reclaims the job.
                raise
            except BaseException:
                error = traceback.format_exc()
                outcome = self.queue.fail(job.job_id, self.worker_id, error)
                result.jobs_failed += 1
                self.telemetry.counter(
                    "service_jobs_failed_total", "jobs whose scenario raised", ("outcome",)
                ).inc(outcome=outcome)
                return
        duration = time.perf_counter() - start
        snapshot = row.pop(TELEMETRY_KEY, None)
        if snapshot is not None:
            # Per-job telemetry folds into the worker's own snapshot (spans
            # keep their recording pid, counters/histograms add).
            self.telemetry.merge(snapshot)
        if keeper.lost:
            # The lease expired while we executed (e.g. a hang outlived the
            # ttl).  The job was reclaimed and will be — or already was —
            # re-executed; our row is the same deterministic row, so appending
            # it would only create a benign duplicate.  Drop it.
            result.acks_lost += 1
            return
        # Append before ack: a crash between the two leaves a done row in the
        # store and a reclaimable lease — the retry appends a duplicate of an
        # identical row, never loses one.  Skip the append only when the store
        # already holds this fingerprint (duplicate submission already run).
        summary = {
            "scenario": row["scenario"],
            "fingerprint": row["fingerprint"],
            "metrics": len(row.get("metrics", {})),
        }
        if row["fingerprint"] not in self.store.fingerprints():
            self.store.append(row)
        if self._queue_io(
            "ack",
            lambda: self.queue.ack(
                job.job_id, self.worker_id, duration_seconds=duration, result=summary
            ),
        ):
            result.jobs_done += 1
            result.executed.append(job.scenario_id)
            self.telemetry.counter(
                "service_jobs_done_total", "jobs completed by this worker"
            ).inc()
            self.telemetry.histogram(
                "service_job_duration_seconds",
                "wall-clock seconds per completed job",
                buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0),
                unit="seconds",
            ).observe(duration)
        else:
            result.acks_lost += 1

    # Main loop --------------------------------------------------------------

    def run(self) -> WorkerResult:
        options = self.options
        result = WorkerResult(worker_id=self.worker_id)
        with obs_core.use(self.telemetry):
            self.queue.record_heartbeat(self.worker_id, jobs_done=0)
            while not self._stop.is_set():
                if options.max_jobs is not None and result.jobs_done >= options.max_jobs:
                    break
                job = self._queue_io(
                    "lease", lambda: self.queue.lease(self.worker_id, options.lease_ttl)
                )
                if job is None:
                    if options.drain:
                        # Back off only if undone work exists but is not yet
                        # runnable (backoff windows / other workers' leases).
                        stats = self.queue.stats()
                        if stats["depth"] == 0:
                            break
                    self.queue.record_heartbeat(
                        self.worker_id, jobs_done=result.jobs_done
                    )
                    if self._stop.wait(options.poll_interval):
                        break
                    continue
                self._run_job(job, result)
            self.queue.record_heartbeat(self.worker_id, jobs_done=result.jobs_done)
        if options.obs_dir:
            from repro import obs

            obs.save(
                self.telemetry, os.path.join(options.obs_dir, self.worker_id)
            )
        return result


def run_worker(options: WorkerOptions, *, queue: JobQueue | None = None) -> WorkerResult:
    """Run one worker loop to completion (the ``service worker`` CLI body)."""
    worker = Worker(options, queue=queue)
    with contextlib.ExitStack() as stack:
        if queue is None:
            stack.callback(worker.queue.close)
        return worker.run()
