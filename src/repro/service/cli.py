"""``impressions service`` subcommands — operate the benchmark farm.

Verbs::

    impressions service start --queue farm.sqlite --store results.jsonl \\
        --port 8080 --workers 4 --cache-dir /tmp/stage-cache
    impressions service submit sweep.json --url http://127.0.0.1:8080 --wait
    impressions service submit sweep.json --queue farm.sqlite
    impressions service status --url http://127.0.0.1:8080
    impressions service watch c1 --url http://127.0.0.1:8080
    impressions service drain --url http://127.0.0.1:8080 --wait
    impressions service gc --queue farm.sqlite --older-than 3600
    impressions service worker --queue farm.sqlite --store results.jsonl

``start`` runs the HTTP control plane in the foreground and (optionally)
spawns a local worker fleet as subprocesses; kill it with Ctrl-C.  Every
other verb talks to a farm either over HTTP (``--url``) or directly through
the shared sqlite queue file (``--queue``) — the two views are equivalent
because sqlite is the source of truth.

``submit --wait`` blocks until the campaign completes (exit 1 if any job
dead-letters), and ``--against-git REV`` then runs the existing
``impressions campaign compare --against-git`` regression gate on the
campaign's result store, so a farm submission can gate CI exactly like a
one-shot ``campaign run``.

``worker`` is the loop ``start`` spawns; it is also a public verb so a fleet
can span processes (or hosts sharing a filesystem) started independently —
and so crash-safety tests can SIGKILL one mid-job.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import Sequence

from repro.campaign.spec import CampaignSpec, SpecError
from repro.campaign.store import StoreError
from repro.faults import plan as fault_plan
from repro.service.queue import DEAD, JobQueue, QueueError

__all__ = ["main", "build_parser"]


class ServiceCliError(RuntimeError):
    """User-facing CLI failures (bad endpoints, HTTP errors)."""


# ---------------------------------------------------------------------------
# Farm clients: one protocol, two transports (HTTP or the sqlite file).

#: Request retry policy: transient failures (connection refused while the
#: server binds, timeouts, HTTP 5xx) back off exponentially from
#: ``_HTTP_BACKOFF_BASE`` capped at ``_HTTP_BACKOFF_CAP``, plus jitter drawn
#: deterministically from (url, attempt) so two clients hammering one
#: endpoint desynchronise the same way every run.  4xx responses are the
#: caller's fault and never retried.
_HTTP_RETRIES = 4
_HTTP_BACKOFF_BASE = 0.25
_HTTP_BACKOFF_CAP = 5.0


def _http_json(
    url: str,
    payload: object = None,
    *,
    method: str | None = None,
    timeout: float = 30.0,
    retries: int = _HTTP_RETRIES,
) -> dict:
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method or ("POST" if data else "GET")
    )
    last_error = ""
    for attempt in range(max(0, retries) + 1):
        if attempt:
            delay = min(_HTTP_BACKOFF_CAP, _HTTP_BACKOFF_BASE * (2.0 ** (attempt - 1)))
            time.sleep(delay + random.Random(f"{url}:{attempt}").uniform(0.0, delay))
        try:
            fault_plan.check("client.request")
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except (ValueError, AttributeError):
                message = body
            if error.code >= 500 and attempt < retries:
                last_error = f"HTTP {error.code}: {message}"
                continue
            raise ServiceCliError(f"{url}: HTTP {error.code}: {message}")
        except urllib.error.URLError as error:
            if attempt < retries:
                last_error = str(error.reason)
                continue
            raise ServiceCliError(f"{url}: {error.reason}")
        except (OSError, TimeoutError) as error:
            if attempt < retries:
                last_error = str(error)
                continue
            raise ServiceCliError(f"{url}: {error}")
    raise ServiceCliError(f"{url}: {last_error or 'request failed'}")


class HttpClient:
    """Farm verbs over HTTP, with a retrying transport.

    Every verb is safe to retry: reads are pure, ``drain`` is a latch, and
    ``submit`` is *idempotent by construction* — scenarios are keyed by their
    spec+seed fingerprint behind a sqlite ``UNIQUE`` index, so a resubmission
    after a lost response re-enqueues nothing and simply returns the dedupe
    counts.
    """

    def __init__(self, url: str, *, timeout: float = 30.0, retries: int = _HTTP_RETRIES) -> None:
        self.base = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries

    def _call(self, path: str, payload: object = None, *, method: str | None = None) -> dict:
        return _http_json(
            f"{self.base}{path}",
            payload,
            method=method,
            timeout=self.timeout,
            retries=self.retries,
        )

    def submit(self, document: dict) -> dict:
        return self._call("/campaigns", document)

    def campaign(self, campaign_id: str) -> dict:
        return self._call(f"/campaigns/{campaign_id}")

    def campaigns(self) -> list[dict]:
        return self._call("/campaigns")["campaigns"]

    def stats(self) -> dict:
        return self._call("/queue/stats")

    def drain(self) -> dict:
        return self._call("/drain", method="POST")


class DirectClient:
    """The same verbs straight against the queue database (no server)."""

    def __init__(self, queue_path: str, store_path: str | None) -> None:
        from repro.service.api import FarmService

        self._queue = JobQueue(queue_path)
        self._service = FarmService(self._queue, store_path or "campaign-results.jsonl")

    def submit(self, document: dict) -> dict:
        return self._service.submit(document)

    def campaign(self, campaign_id: str) -> dict:
        return self._queue.campaign(campaign_id)

    def campaigns(self) -> list[dict]:
        return self._queue.campaigns()

    def stats(self) -> dict:
        return self._queue.stats()

    def drain(self) -> dict:
        raise ServiceCliError(
            "drain needs a running service (--url): a bare queue file has no "
            "submission endpoint to close"
        )

    def close(self) -> None:
        self._queue.close()


def _client(args: argparse.Namespace) -> "HttpClient | DirectClient":
    if getattr(args, "url", None):
        return HttpClient(
            args.url,
            timeout=getattr(args, "http_timeout", 30.0),
            retries=getattr(args, "http_retries", _HTTP_RETRIES),
        )
    if getattr(args, "queue", None):
        return DirectClient(args.queue, getattr(args, "store", None))
    raise ServiceCliError("pass --url http://HOST:PORT or --queue PATH")


def _add_endpoint_arguments(parser: argparse.ArgumentParser, *, store: bool = True) -> None:
    parser.add_argument(
        "--url", metavar="URL", default=None, help="control-plane endpoint (http://host:port)"
    )
    parser.add_argument(
        "--queue", metavar="PATH", default=None, help="queue database file (direct access)"
    )
    parser.add_argument(
        "--http-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request timeout for --url transports (default: %(default)s)",
    )
    parser.add_argument(
        "--http-retries",
        type=int,
        default=_HTTP_RETRIES,
        metavar="N",
        help="transient-failure retries with capped backoff (default: %(default)s)",
    )
    if store:
        parser.add_argument(
            "--store",
            metavar="PATH",
            default=None,
            help="result store for direct --queue submissions (default: campaign-results.jsonl)",
        )


# ---------------------------------------------------------------------------
# Parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="impressions service",
        description="Run campaigns as a durable benchmark farm: queue, workers, HTTP API.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    start = commands.add_parser("start", help="run the control plane (and a worker fleet)")
    start.add_argument("--queue", default="service-queue.sqlite", metavar="PATH")
    start.add_argument("--store", default="campaign-results.jsonl", metavar="PATH")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument("--port", type=int, default=8765)
    start.add_argument(
        "--workers", type=int, default=1, help="local worker subprocesses (default: %(default)s; 0 = API only)"
    )
    start.add_argument("--cache-dir", default=None, metavar="PATH", help="shared stage cache for the fleet")
    start.add_argument("--obs-dir", default=None, metavar="PATH", help="per-worker telemetry snapshot directory")
    start.add_argument("--lease-ttl", type=float, default=60.0, metavar="SECONDS")
    start.add_argument("--poll-interval", type=float, default=0.5, metavar="SECONDS")
    start.add_argument("--max-attempts", type=int, default=None, help="retry budget for submitted jobs")
    start.add_argument(
        "--run-for",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long (smoke tests; default: run until interrupted)",
    )
    start.add_argument("--json", action="store_true", help="print the endpoint as JSON once bound")

    submit = commands.add_parser("submit", help="submit a campaign spec to the farm")
    submit.add_argument("spec", help="campaign spec (JSON file)")
    _add_endpoint_arguments(submit)
    submit.add_argument("--max-attempts", type=int, default=None)
    submit.add_argument("--wait", action="store_true", help="block until the campaign completes")
    submit.add_argument(
        "--against-git",
        metavar="REV",
        default=None,
        help="after completion (implies --wait), gate the store against REV with campaign compare",
    )
    submit.add_argument("--tolerance", type=float, default=0.05, help="compare tolerance (default: %(default)s)")
    submit.add_argument("--poll-interval", type=float, default=1.0, metavar="SECONDS")
    submit.add_argument("--timeout", type=float, default=None, metavar="SECONDS", help="give up waiting after this long")
    submit.add_argument("--json", action="store_true")

    status = commands.add_parser("status", help="queue stats and campaign progress")
    _add_endpoint_arguments(status, store=False)
    status.add_argument("--campaign", metavar="ID", default=None, help="show one campaign")
    status.add_argument("--json", action="store_true")

    watch = commands.add_parser("watch", help="follow a campaign until it completes")
    watch.add_argument("campaign", metavar="ID")
    _add_endpoint_arguments(watch, store=False)
    watch.add_argument("--poll-interval", type=float, default=1.0, metavar="SECONDS")
    watch.add_argument("--timeout", type=float, default=None, metavar="SECONDS")
    watch.add_argument("--json", action="store_true", help="print the final campaign state as JSON")

    drain = commands.add_parser("drain", help="close submissions; optionally wait for empty")
    _add_endpoint_arguments(drain, store=False)
    drain.add_argument("--wait", action="store_true", help="block until queue depth reaches zero")
    drain.add_argument("--poll-interval", type=float, default=1.0, metavar="SECONDS")
    drain.add_argument("--timeout", type=float, default=None, metavar="SECONDS")
    drain.add_argument("--json", action="store_true")

    gc = commands.add_parser("gc", help="collect finished jobs and stale heartbeats")
    gc.add_argument("--queue", required=True, metavar="PATH")
    gc.add_argument(
        "--older-than", type=float, default=0.0, metavar="SECONDS", help="only rows idle at least this long"
    )
    gc.add_argument("--dry-run", action="store_true", help="report what would be collected")
    gc.add_argument("--json", action="store_true")

    worker = commands.add_parser("worker", help="run one worker loop against a queue")
    worker.add_argument("--queue", required=True, metavar="PATH")
    worker.add_argument("--store", required=True, metavar="PATH")
    worker.add_argument("--worker-id", default="", metavar="NAME")
    worker.add_argument("--lease-ttl", type=float, default=60.0, metavar="SECONDS")
    worker.add_argument("--poll-interval", type=float, default=0.5, metavar="SECONDS")
    worker.add_argument("--cache-dir", default=None, metavar="PATH")
    worker.add_argument("--obs-dir", default=None, metavar="PATH")
    worker.add_argument("--drain", action="store_true", help="exit once the queue has no runnable work")
    worker.add_argument("--max-jobs", type=int, default=None)
    worker.add_argument(
        "--inject-fault",
        default="",
        metavar="SPEC",
        help=argparse.SUPPRESS,  # chaos hook for crash-safety tests
    )
    worker.add_argument("--json", action="store_true")
    return parser


# ---------------------------------------------------------------------------
# Verbs


def _run_start(args: argparse.Namespace) -> int:
    from repro.service.api import FarmService, make_server

    queue = JobQueue(args.queue)
    service = FarmService(queue, args.store, default_max_attempts=args.max_attempts)
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    if args.json:
        print(json.dumps({"url": url, "queue": args.queue, "store": args.store, "workers": args.workers}))
    else:
        print(f"service listening on {url} (queue {args.queue}, store {args.store})")
    sys.stdout.flush()

    fleet: list[subprocess.Popen] = []
    for index in range(args.workers):
        command = [
            sys.executable,
            "-m",
            "repro.core.cli",
            "service",
            "worker",
            "--queue",
            args.queue,
            "--store",
            args.store,
            "--worker-id",
            f"worker-{os.getpid()}-{index}",
            "--lease-ttl",
            str(args.lease_ttl),
            "--poll-interval",
            str(args.poll_interval),
        ]
        if args.cache_dir:
            command += ["--cache-dir", args.cache_dir]
        if args.obs_dir:
            command += ["--obs-dir", args.obs_dir]
        fleet.append(subprocess.Popen(command))

    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = None if args.run_for is None else time.monotonic() + args.run_for
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        for process in fleet:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in fleet:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                process.kill()
                process.wait()
        queue.close()
    return 0


def _wait_for_campaign(
    client: "HttpClient | DirectClient",
    campaign_id: str,
    *,
    poll_interval: float,
    timeout: float | None,
    echo: bool,
) -> dict:
    deadline = None if timeout is None else time.monotonic() + timeout
    last_line = ""
    while True:
        info = client.campaign(campaign_id)
        if echo:
            eta = info.get("eta_seconds")
            line = (
                f"{campaign_id}: {info['done']}/{info['total']} done "
                f"({100.0 * info['progress']:.0f}%), {info['jobs'][DEAD]} dead"
                + (f", eta {eta:.0f}s" if eta else "")
            )
            if line != last_line:
                print(line, file=sys.stderr, flush=True)
                last_line = line
        if info["state"] != "running":
            return info
        if deadline is not None and time.monotonic() >= deadline:
            raise ServiceCliError(
                f"timed out after {timeout:.0f}s waiting for campaign {campaign_id} "
                f"({info['done']}/{info['total']} done)"
            )
        time.sleep(poll_interval)


def _run_submit(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    document: dict = {"spec": spec.to_dict()}
    if args.max_attempts is not None:
        document["max_attempts"] = args.max_attempts
    if args.store:
        document["store"] = args.store
    client = _client(args)
    submitted = client.submit(document)
    wait = args.wait or args.against_git is not None
    if not wait:
        if args.json:
            print(json.dumps(submitted, sort_keys=True))
        else:
            print(
                f"campaign {submitted['campaign']} ({submitted['name']}): "
                f"{submitted['enqueued']} enqueued, {submitted['deduped']} deduped, "
                f"{submitted['already_done']} already done of {submitted['total']}"
            )
        return 0
    info = _wait_for_campaign(
        client,
        submitted["campaign"],
        poll_interval=args.poll_interval,
        timeout=args.timeout,
        echo=not args.json,
    )
    failed = info["state"] != "complete"
    payload = {"submitted": submitted, "campaign": info, "failed": failed}
    if failed:
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            print(f"campaign {submitted['campaign']} {info['state']}: {info['jobs']}")
        return 1
    if args.against_git:
        from repro.campaign.cli import main as campaign_main

        # The completed store is the candidate; the baseline comes from git.
        code = campaign_main(
            [
                "compare",
                info["store"],
                "--against-git",
                args.against_git,
                "--tolerance",
                str(args.tolerance),
            ]
            + (["--json"] if args.json else [])
        )
        return code
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(f"campaign {submitted['campaign']} complete: {info['done']}/{info['total']} in store {info['store']}")
    return 0


def _run_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.campaign:
        info = client.campaign(args.campaign)
        if args.json:
            print(json.dumps(info, sort_keys=True))
        else:
            print(
                f"campaign {info['campaign']} ({info['name']}): {info['state']}, "
                f"{info['done']}/{info['total']} done, jobs {info['jobs']}"
            )
        return 0
    stats = client.stats()
    campaigns = client.campaigns()
    if args.json:
        print(json.dumps({"stats": stats, "campaigns": campaigns}, sort_keys=True))
        return 0
    jobs = stats["jobs"]
    print(
        f"queue {stats['path']}: depth {stats['depth']} "
        f"(pending {jobs['pending']}, leased {jobs['leased']}, "
        f"done {jobs['done']}, dead {jobs['dead']})"
    )
    counters = stats["counters"]
    print(
        f"counters: reclaims {counters['lease_reclaims']:.0f}, "
        f"retries {counters['job_retries']:.0f}, dead {counters['jobs_dead']:.0f}"
    )
    for worker in stats["workers"]:
        print(
            f"worker {worker['worker']}: beat {worker['age_seconds']:.1f}s ago, "
            f"{worker['jobs_done']} done"
        )
    for info in campaigns:
        print(
            f"campaign {info['campaign']} ({info['name']}): {info['state']}, "
            f"{info['done']}/{info['total']} done"
        )
    return 0


def _run_watch(args: argparse.Namespace) -> int:
    client = _client(args)
    info = _wait_for_campaign(
        client,
        args.campaign,
        poll_interval=args.poll_interval,
        timeout=args.timeout,
        echo=True,
    )
    if args.json:
        print(json.dumps(info, sort_keys=True))
    else:
        print(f"campaign {args.campaign} {info['state']}: {info['done']}/{info['total']} done")
    return 0 if info["state"] == "complete" else 1


def _run_drain(args: argparse.Namespace) -> int:
    client = _client(args)
    result = client.drain()
    if args.wait:
        deadline = None if args.timeout is None else time.monotonic() + args.timeout
        while True:
            stats = client.stats()
            result = {"draining": True, "depth": stats["depth"]}
            if stats["depth"] == 0:
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceCliError(
                    f"timed out after {args.timeout:.0f}s draining (depth {stats['depth']})"
                )
            time.sleep(args.poll_interval)
    if args.json:
        print(json.dumps(result, sort_keys=True))
    else:
        print(f"draining; queue depth {result['depth']}")
    return 0


def _run_gc(args: argparse.Namespace) -> int:
    with JobQueue(args.queue) as queue:
        report = queue.gc(older_than_seconds=args.older_than, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        verb = "would collect" if args.dry_run else "collected"
        print(
            f"{verb} {report['jobs_collected']} done job(s) and "
            f"{report['heartbeats_collected']} stale heartbeat(s)"
        )
    return 0


def _run_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import WorkerOptions, run_worker

    options = WorkerOptions(
        queue_path=args.queue,
        store_path=args.store,
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll_interval=args.poll_interval,
        cache_dir=args.cache_dir,
        obs_dir=args.obs_dir,
        drain=args.drain,
        max_jobs=args.max_jobs,
        inject_fault=args.inject_fault,
    )
    result = run_worker(options)
    if args.json:
        print(json.dumps(result.as_dict(), sort_keys=True))
    else:
        print(
            f"worker {result.worker_id}: {result.jobs_done} done, "
            f"{result.jobs_failed} failed, {result.acks_lost} acks lost"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``impressions service ...``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "start": _run_start,
        "submit": _run_submit,
        "status": _run_status,
        "watch": _run_watch,
        "drain": _run_drain,
        "gc": _run_gc,
        "worker": _run_worker,
    }
    try:
        return handlers[args.command](args)
    except (ServiceCliError, QueueError, SpecError, StoreError, ValueError) as error:
        raise SystemExit(f"impressions service {args.command}: error: {error}")
    except OSError as error:
        raise SystemExit(f"impressions service {args.command}: error: {error}")
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
