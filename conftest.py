"""Repo-root pytest configuration.

Registers command-line options shared across the test and benchmark suites.
Options must be added from an *initial* conftest, and only directories on the
invocation path qualify — defining ``--bench-json`` in
``benchmarks/conftest.py`` alone would make ``pytest --bench-json DIR`` fail
with "unrecognized arguments" when run from the repo root.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=os.environ.get("IMPRESSIONS_BENCH_JSON"),
        metavar="DIR",
        help="Directory to write BENCH_<name>.json perf-baseline files into "
        "(default: $IMPRESSIONS_BENCH_JSON; unset disables emission). "
        "Consumed by the benchmarks/ suite.",
    )
