"""Legacy setup shim so `pip install -e .` works offline (no wheel package)."""
from setuptools import find_packages, setup

setup(
    name="impressions-repro",
    version="0.1.0",
    description="FAST '09 Impressions reproduction: file-system images and operation traces",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["impressions=repro.core.cli:main"]},
)
